package store

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// countingBackend wraps a backend counting inner operations, with an
// optional gate that holds Gets open (single-flight tests).
type countingBackend struct {
	Backend
	mu   sync.Mutex
	gets int
	gate chan struct{} // if non-nil, Get blocks until it is closed
}

func (c *countingBackend) Get(key string) ([]Section, error) {
	c.mu.Lock()
	c.gets++
	gate := c.gate
	c.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return c.Backend.Get(key)
}

func (c *countingBackend) innerGets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets
}

func TestCachedWriteThroughServesHitsWithoutInnerReads(t *testing.T) {
	inner := &countingBackend{Backend: NewMemory()}
	c := NewCached(inner, 1<<20)
	want := sampleSections(1)
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Get("k1")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("get %d: sections differ", i)
		}
	}
	if inner.innerGets() != 0 {
		t.Errorf("write-through cache reached the inner backend %d times", inner.innerGets())
	}
	st := c.Stats()
	if st.CacheHits != 3 || st.CacheMisses != 0 {
		t.Errorf("hits/misses = %d/%d, want 3/0", st.CacheHits, st.CacheMisses)
	}
	// The inner write happened (write-through, not write-back).
	if got, err := inner.Backend.Get("k1"); err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("inner object missing after write-through: %v", err)
	}
}

func TestCachedReadThroughPopulatesOnMiss(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("cold", sampleSections(7)); err != nil {
		t.Fatal(err)
	}
	inner := &countingBackend{Backend: mem}
	c := NewCached(inner, 1<<20)
	for i := 0; i < 4; i++ {
		if _, err := c.Get("cold"); err != nil {
			t.Fatal(err)
		}
	}
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d, want 1 (read-through then cached)", inner.innerGets())
	}
	st := c.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 3 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.CacheHits, st.CacheMisses)
	}
}

func TestCachedReturnsIndependentCopies(t *testing.T) {
	c := NewCached(NewMemory(), 1<<20)
	if err := c.Put("k", sampleSections(3)); err != nil {
		t.Fatal(err)
	}
	a, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	a[1].Data[0] ^= 0xFF // caller scribbles on its copy
	b, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, sampleSections(3)) {
		t.Error("a caller's mutation leaked into the cached object")
	}
}

func TestCachedEvictsColdEntriesAtByteBound(t *testing.T) {
	inner := &countingBackend{Backend: NewMemory()}
	one := EncodedSize(sampleSections(0))
	c := NewCached(inner, 2*one) // room for exactly two objects
	for _, k := range []string{"a", "b", "cvict"} {
		if err := c.Put(k, sampleSections(k[0])); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CachedBytes(); got > 2*one {
		t.Errorf("cache holds %d bytes, bound is %d", got, 2*one)
	}
	// "a" was coldest and must have been evicted; reading it goes inner.
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d, want 1 (only the evicted key)", inner.innerGets())
	}
	// "cvict" is hot and still cached.
	if _, err := c.Get("cvict"); err != nil {
		t.Fatal(err)
	}
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d after hot read, want 1", inner.innerGets())
	}
}

func TestCachedLRUOrderRespectsRecentUse(t *testing.T) {
	inner := &countingBackend{Backend: NewMemory()}
	one := EncodedSize(sampleSections(0))
	c := NewCached(inner, 2*one)
	c.Put("a", sampleSections('a'))
	c.Put("b", sampleSections('b'))
	c.Get("a")                      // refresh "a": now "b" is coldest
	c.Put("c", sampleSections('c')) // evicts "b"
	c.Get("a")
	if inner.innerGets() != 0 {
		t.Errorf("recently used key was evicted (inner gets = %d)", inner.innerGets())
	}
	c.Get("b")
	if inner.innerGets() != 1 {
		t.Errorf("cold key should have been the evicted one (inner gets = %d)", inner.innerGets())
	}
}

func TestCachedSkipsObjectsLargerThanBound(t *testing.T) {
	c := NewCached(NewMemory(), 64) // smaller than any sample object
	if err := c.Put("big", sampleSections(9)); err != nil {
		t.Fatal(err)
	}
	if got := c.CachedBytes(); got != 0 {
		t.Errorf("oversized object cached (%d bytes)", got)
	}
	if _, err := c.Get("big"); err != nil {
		t.Fatal(err) // still served read-through
	}
}

func TestCachedDeleteEvicts(t *testing.T) {
	c := NewCached(NewMemory(), 1<<20)
	c.Put("k", sampleSections(2))
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key served from cache: %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete = %v, want ErrNotFound", err)
	}
}

// toggleFailBackend fails every Put while fail is set.
type toggleFailBackend struct {
	*Memory
	fail bool
}

func (f *toggleFailBackend) Put(key string, sections []Section) error {
	if f.fail {
		return errors.New("injected write failure")
	}
	return f.Memory.Put(key, sections)
}

func TestCachedFailedPutInvalidates(t *testing.T) {
	failing := &toggleFailBackend{Memory: NewMemory()}
	c := NewCached(failing, 1<<20)
	if err := c.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	failing.fail = true
	if err := c.Put("k", sampleSections(2)); err == nil {
		t.Fatal("failed inner Put not surfaced")
	}
	// The stale cached copy must not be served: the inner object's state
	// is the only truth after a failed overwrite.
	got, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(1)) {
		t.Error("cache served a version inconsistent with the inner store")
	}
}

func TestCachedSingleFlightDeduplicatesConcurrentGets(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("k", sampleSections(5)); err != nil {
		t.Fatal(err)
	}
	inner := &countingBackend{Backend: mem, gate: make(chan struct{})}
	c := NewCached(inner, 1<<20)
	const readers = 16
	var wg sync.WaitGroup
	results := make([][]Section, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get("k")
		}(i)
	}
	// Let the leader reach the inner Get and the rest pile up on the
	// flight entry, then release.
	for inner.innerGets() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(inner.gate)
	wg.Wait()
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d, want 1 (single-flight)", inner.innerGets())
	}
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], sampleSections(5)) {
			t.Errorf("reader %d got wrong sections", i)
		}
	}
}

// scriptedBackend sequences the cache-coherence race tests: Get reads
// the inner result first, then (optionally) parks on exit — so a value
// read *before* a concurrent mutation is returned *after* it — and can
// fail a fixed number of leading Gets with a transient error.
type scriptedBackend struct {
	Backend
	mu       sync.Mutex
	gets     int
	puts     int
	failGets int           // fail this many leading Gets
	getExit  chan struct{} // if non-nil, Get parks here after reading
	putExit  chan struct{} // if non-nil, Put parks here after writing
}

var errTransient = errors.New("store: transient inner failure")

func (s *scriptedBackend) Get(key string) ([]Section, error) {
	s.mu.Lock()
	s.gets++
	fail := s.failGets > 0
	if fail {
		s.failGets--
	}
	exit := s.getExit
	s.mu.Unlock()
	if fail {
		return nil, errTransient
	}
	sections, err := s.Backend.Get(key)
	if exit != nil {
		<-exit
	}
	return sections, err
}

func (s *scriptedBackend) Put(key string, sections []Section) error {
	err := s.Backend.Put(key, sections)
	s.mu.Lock()
	s.puts++
	exit := s.putExit
	s.mu.Unlock()
	if exit != nil {
		<-exit
	}
	return err
}

func (s *scriptedBackend) counts() (gets, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.puts
}

// TestCachedFollowersRetryAfterLeaderError pins the single-flight fix:
// a leader's transient inner error fails only the leader's own Get.
// Followers waiting on the flight retry instead of adopting the error,
// and one of them becomes the next leader and succeeds.
func TestCachedFollowersRetryAfterLeaderError(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("k", sampleSections(5)); err != nil {
		t.Fatal(err)
	}
	inner := &scriptedBackend{Backend: mem, failGets: 1, getExit: make(chan struct{})}
	c := NewCached(inner, 1<<20)

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Get("k")
		leaderErr <- err
	}()
	// The failing leader returns without touching the gate (failGets
	// short-circuits before the park); wait until a follower has joined
	// its flight before letting anything proceed.
	// Leader's inner Get fails immediately, so first make sure the flight
	// exists, then add the follower.
	for {
		if g, _ := inner.counts(); g >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// NOTE: the leader may already have failed by now; either way the
	// follower below must end up with the object, never errTransient.
	followerRes := make(chan error, 1)
	var got []Section
	go func() {
		sections, err := c.Get("k")
		got = sections
		followerRes <- err
	}()
	close(inner.getExit) // release the follower's own (successful) read
	if err := <-leaderErr; !errors.Is(err, errTransient) {
		t.Fatalf("leader error = %v, want the transient inner error", err)
	}
	if err := <-followerRes; err != nil {
		t.Fatalf("follower must retry past the leader's transient error, got %v", err)
	}
	if !reflect.DeepEqual(got, sampleSections(5)) {
		t.Error("follower got wrong sections")
	}
}

// TestCachedFollowersShareNotFound: absence is a definitive answer —
// followers must not burn extra inner reads retrying it.
func TestCachedFollowersShareNotFound(t *testing.T) {
	mem := NewMemory()
	inner := &scriptedBackend{Backend: mem, getExit: make(chan struct{})}
	c := NewCached(inner, 1<<20)
	const readers = 4
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Get("missing")
		}(i)
	}
	for {
		if g, _ := inner.counts(); g >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(inner.getExit)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("reader %d: %v, want ErrNotFound", i, err)
		}
	}
	if g, _ := inner.counts(); g != 1 {
		t.Errorf("inner gets = %d, want 1 (shared not-found)", g)
	}
}

// TestCachedGetRacingDeleteDoesNotRepopulate pins the coherence fix: a
// single-flight leader whose inner read raced a Delete must not insert
// the deleted blob into the cache.
func TestCachedGetRacingDeleteDoesNotRepopulate(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("k", sampleSections(5)); err != nil {
		t.Fatal(err)
	}
	inner := &scriptedBackend{Backend: mem, getExit: make(chan struct{})}
	c := NewCached(inner, 1<<20)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Get("k")
		leaderDone <- err
	}()
	for {
		if g, _ := inner.counts(); g >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// The leader has read the (pre-delete) object and is parked on its
	// way out. Delete the key, then let the leader finish.
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	close(inner.getExit)
	if err := <-leaderDone; err != nil {
		// The leader's own result may be the old object (its read began
		// before the delete) — but never an error here.
		t.Fatalf("leader: %v", err)
	}
	if n := c.CachedBytes(); n != 0 {
		t.Fatalf("cache holds %d bytes of a deleted object", n)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object still served (err=%v)", err)
	}
}

// TestCachedPutRacingDeleteDoesNotRepopulate: same window on the write
// path — a Delete landing between the inner write and the cache fill
// must win.
func TestCachedPutRacingDeleteDoesNotRepopulate(t *testing.T) {
	mem := NewMemory()
	inner := &scriptedBackend{Backend: mem, putExit: make(chan struct{})}
	c := NewCached(inner, 1<<20)

	putDone := make(chan error, 1)
	go func() { putDone <- c.Put("k", sampleSections(5)) }()
	for {
		if _, p := inner.counts(); p >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// The inner write landed; the writer is parked before its cache fill.
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	close(inner.putExit)
	if err := <-putDone; err != nil {
		t.Fatalf("put: %v", err)
	}
	if n := c.CachedBytes(); n != 0 {
		t.Fatalf("cache holds %d bytes of a deleted object", n)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object still served from cache (err=%v)", err)
	}
}

package store

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// countingBackend wraps a backend counting inner operations, with an
// optional gate that holds Gets open (single-flight tests).
type countingBackend struct {
	Backend
	mu   sync.Mutex
	gets int
	gate chan struct{} // if non-nil, Get blocks until it is closed
}

func (c *countingBackend) Get(key string) ([]Section, error) {
	c.mu.Lock()
	c.gets++
	gate := c.gate
	c.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return c.Backend.Get(key)
}

func (c *countingBackend) innerGets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets
}

func TestCachedWriteThroughServesHitsWithoutInnerReads(t *testing.T) {
	inner := &countingBackend{Backend: NewMemory()}
	c := NewCached(inner, 1<<20)
	want := sampleSections(1)
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Get("k1")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("get %d: sections differ", i)
		}
	}
	if inner.innerGets() != 0 {
		t.Errorf("write-through cache reached the inner backend %d times", inner.innerGets())
	}
	st := c.Stats()
	if st.CacheHits != 3 || st.CacheMisses != 0 {
		t.Errorf("hits/misses = %d/%d, want 3/0", st.CacheHits, st.CacheMisses)
	}
	// The inner write happened (write-through, not write-back).
	if got, err := inner.Backend.Get("k1"); err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("inner object missing after write-through: %v", err)
	}
}

func TestCachedReadThroughPopulatesOnMiss(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("cold", sampleSections(7)); err != nil {
		t.Fatal(err)
	}
	inner := &countingBackend{Backend: mem}
	c := NewCached(inner, 1<<20)
	for i := 0; i < 4; i++ {
		if _, err := c.Get("cold"); err != nil {
			t.Fatal(err)
		}
	}
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d, want 1 (read-through then cached)", inner.innerGets())
	}
	st := c.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 3 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.CacheHits, st.CacheMisses)
	}
}

func TestCachedReturnsIndependentCopies(t *testing.T) {
	c := NewCached(NewMemory(), 1<<20)
	if err := c.Put("k", sampleSections(3)); err != nil {
		t.Fatal(err)
	}
	a, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	a[1].Data[0] ^= 0xFF // caller scribbles on its copy
	b, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, sampleSections(3)) {
		t.Error("a caller's mutation leaked into the cached object")
	}
}

func TestCachedEvictsColdEntriesAtByteBound(t *testing.T) {
	inner := &countingBackend{Backend: NewMemory()}
	one := EncodedSize(sampleSections(0))
	c := NewCached(inner, 2*one) // room for exactly two objects
	for _, k := range []string{"a", "b", "cvict"} {
		if err := c.Put(k, sampleSections(k[0])); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CachedBytes(); got > 2*one {
		t.Errorf("cache holds %d bytes, bound is %d", got, 2*one)
	}
	// "a" was coldest and must have been evicted; reading it goes inner.
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d, want 1 (only the evicted key)", inner.innerGets())
	}
	// "cvict" is hot and still cached.
	if _, err := c.Get("cvict"); err != nil {
		t.Fatal(err)
	}
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d after hot read, want 1", inner.innerGets())
	}
}

func TestCachedLRUOrderRespectsRecentUse(t *testing.T) {
	inner := &countingBackend{Backend: NewMemory()}
	one := EncodedSize(sampleSections(0))
	c := NewCached(inner, 2*one)
	c.Put("a", sampleSections('a'))
	c.Put("b", sampleSections('b'))
	c.Get("a")                      // refresh "a": now "b" is coldest
	c.Put("c", sampleSections('c')) // evicts "b"
	c.Get("a")
	if inner.innerGets() != 0 {
		t.Errorf("recently used key was evicted (inner gets = %d)", inner.innerGets())
	}
	c.Get("b")
	if inner.innerGets() != 1 {
		t.Errorf("cold key should have been the evicted one (inner gets = %d)", inner.innerGets())
	}
}

func TestCachedSkipsObjectsLargerThanBound(t *testing.T) {
	c := NewCached(NewMemory(), 64) // smaller than any sample object
	if err := c.Put("big", sampleSections(9)); err != nil {
		t.Fatal(err)
	}
	if got := c.CachedBytes(); got != 0 {
		t.Errorf("oversized object cached (%d bytes)", got)
	}
	if _, err := c.Get("big"); err != nil {
		t.Fatal(err) // still served read-through
	}
}

func TestCachedDeleteEvicts(t *testing.T) {
	c := NewCached(NewMemory(), 1<<20)
	c.Put("k", sampleSections(2))
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key served from cache: %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete = %v, want ErrNotFound", err)
	}
}

// toggleFailBackend fails every Put while fail is set.
type toggleFailBackend struct {
	*Memory
	fail bool
}

func (f *toggleFailBackend) Put(key string, sections []Section) error {
	if f.fail {
		return errors.New("injected write failure")
	}
	return f.Memory.Put(key, sections)
}

func TestCachedFailedPutInvalidates(t *testing.T) {
	failing := &toggleFailBackend{Memory: NewMemory()}
	c := NewCached(failing, 1<<20)
	if err := c.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	failing.fail = true
	if err := c.Put("k", sampleSections(2)); err == nil {
		t.Fatal("failed inner Put not surfaced")
	}
	// The stale cached copy must not be served: the inner object's state
	// is the only truth after a failed overwrite.
	got, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(1)) {
		t.Error("cache served a version inconsistent with the inner store")
	}
}

func TestCachedSingleFlightDeduplicatesConcurrentGets(t *testing.T) {
	mem := NewMemory()
	if err := mem.Put("k", sampleSections(5)); err != nil {
		t.Fatal(err)
	}
	inner := &countingBackend{Backend: mem, gate: make(chan struct{})}
	c := NewCached(inner, 1<<20)
	const readers = 16
	var wg sync.WaitGroup
	results := make([][]Section, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get("k")
		}(i)
	}
	// Let the leader reach the inner Get and the rest pile up on the
	// flight entry, then release.
	for inner.innerGets() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(inner.gate)
	wg.Wait()
	if inner.innerGets() != 1 {
		t.Errorf("inner gets = %d, want 1 (single-flight)", inner.innerGets())
	}
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], sampleSections(5)) {
			t.Errorf("reader %d got wrong sections", i)
		}
	}
}

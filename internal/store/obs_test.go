package store

import (
	"errors"
	"testing"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

func obsSections() []Section {
	return []Section{
		{Name: "a", Data: []byte("0123456789abcdef")},
		{Name: "b", Data: []byte("fedcba9876543210")},
	}
}

// TestObsThroughStack opens a cached memory stack with decorators armed
// and checks every layer recorded its operations.
func TestObsThroughStack(t *testing.T) {
	reg := obs.New()
	b, err := Open(Config{Kind: KindMemory, CacheMB: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	b = Decorate(b, Config{Incremental: true, Async: true, Obs: reg})
	defer b.Close()

	for _, key := range []string{"k-000001", "k-000002"} {
		if err := b.Put(key, obsSections()); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k-000002"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.List(); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	for _, h := range []string{
		"store.memory.put.ns", "store.cached.put.ns", "store.incr.put.ns",
		"store.async.put.ns", "store.async.writer.ns", "store.incr.get.ns",
	} {
		if s.Histograms[h].Count == 0 {
			t.Errorf("histogram %q recorded nothing", h)
		}
	}
	if got := s.Counters["store.incr.keyframes"] + s.Counters["store.incr.deltas"]; got != 2 {
		t.Errorf("keyframes+deltas = %d, want 2", got)
	}
	if s.Counters["store.memory.put.bytes"] == 0 {
		t.Error("store.memory.put.bytes not recorded")
	}
}

// TestObsErrorClasses checks that errors land in the right class counter.
func TestObsErrorClasses(t *testing.T) {
	reg := obs.New()
	m := NewMemory()
	m.SetObs(reg)

	if _, err := m.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := m.Put("k", obsSections()); err != nil {
		t.Fatal(err)
	}
	m.Corrupt("k", 5)
	if _, err := m.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(corrupted) = %v, want ErrCorrupt", err)
	}

	faults := faultinject.NewRegistry(1)
	if err := faults.ArmSchedule("store.get=error@nth=1"); err != nil {
		t.Fatal(err)
	}
	m.SetFaults(faults)
	if _, err := m.Get("k"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Get(injected) = %v, want injected", err)
	}

	s := reg.Snapshot()
	for counter, want := range map[string]int64{
		"store.memory.get.err.not_found": 1,
		"store.memory.get.err.corrupt":   1,
		"store.memory.get.err.injected":  1,
	} {
		if got := s.Counters[counter]; got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
}

// TestObsChainBrokenClass drives the incremental decorator into a broken
// chain and checks the error classifies as chain_broken.
func TestObsChainBrokenClass(t *testing.T) {
	reg := obs.New()
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 0)
	inc.SetObs(reg)
	if err := inc.Put("c-000001", obsSections()); err != nil {
		t.Fatal(err)
	}
	mutated := obsSections()
	mutated[0].Data[0] ^= 0xFF
	if err := inc.Put("c-000002", mutated); err != nil {
		t.Fatal(err)
	}
	// Remove the keyframe behind the decorator's back: the delta chain
	// for c-000002 can no longer be reconstructed.
	if err := inner.Delete("c-000001"); err != nil {
		t.Fatal(err)
	}
	var chain *ChainBrokenError
	if _, err := inc.Get("c-000002"); !errors.As(err, &chain) {
		t.Fatalf("Get over broken chain = %v, want ChainBrokenError", err)
	}
	if got := reg.Snapshot().Counters["store.incr.get.err.chain_broken"]; got != 1 {
		t.Fatalf("chain_broken counter = %d, want 1", got)
	}
}

// TestCacheFollowerHitCounters checks the obs mirror of the cache outcome
// counters agrees with Stats after serial traffic.
func TestCacheFollowerHitCounters(t *testing.T) {
	reg := obs.New()
	c := NewCached(NewMemory(), 1<<20)
	c.SetObs(reg)
	if err := c.Put("k", obsSections()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil { // cache hit (populated on write)
		t.Fatal(err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNotFound) { // miss
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheFollowerHits != 0 {
		t.Fatalf("stats = hits %d followers %d misses %d, want 1/0/1",
			st.CacheHits, st.CacheFollowerHits, st.CacheMisses)
	}
	s := reg.Snapshot()
	if s.Counters["store.cache.hits"] != 1 || s.Counters["store.cache.misses"] != 1 {
		t.Fatalf("obs cache counters = %v", s.Counters)
	}
}

// TestDisabledObsAddsNoAllocs pins that the telemetry wrappers are free
// when disabled: Put/Get on a backend with no registry allocate exactly
// as much as with a registry armed (recording is pure atomics), and the
// wrapper itself adds nothing on top of the store work.
func TestDisabledObsAddsNoAllocs(t *testing.T) {
	sections := obsSections()
	measure := func(reg *obs.Registry) (putAllocs, getAllocs float64) {
		m := NewMemory()
		if reg != nil {
			m.SetObs(reg)
		}
		// Warm up: key exists, maps sized.
		if err := m.Put("k", sections); err != nil {
			t.Fatal(err)
		}
		putAllocs = testing.AllocsPerRun(200, func() {
			if err := m.Put("k", sections); err != nil {
				t.Fatal(err)
			}
		})
		getAllocs = testing.AllocsPerRun(200, func() {
			if _, err := m.Get("k"); err != nil {
				t.Fatal(err)
			}
		})
		return putAllocs, getAllocs
	}
	putOff, getOff := measure(nil)
	putOn, getOn := measure(obs.New())
	if putOff != putOn {
		t.Errorf("Put allocs: disabled %.1f vs enabled %.1f — telemetry wrapper not free", putOff, putOn)
	}
	if getOff != getOn {
		t.Errorf("Get allocs: disabled %.1f vs enabled %.1f — telemetry wrapper not free", getOff, getOn)
	}
}

package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Async decorates a backend with double-buffered asynchronous writes, the
// FTI-style dedicated-writer optimization: Put snapshots the sections
// into a staging buffer and returns immediately while a background
// goroutine persists them, so the application resumes computing during
// the checkpoint write. Two staging buffers are in flight at most; a
// third Put blocks until a buffer is reusable (i.e. the application only
// ever waits when it outruns the storage medium by two full
// checkpoints).
//
// Write errors are deferred: they surface on the next Put, on Flush, or
// on Close. Reads (Get/List/Delete/Stats) flush pending writes first so
// the decorator is sequentially consistent with itself.
type Async struct {
	inner  Backend
	faults *faultinject.Registry
	ops    opSet
	// writerLat times the background persist of one staged buffer —
	// the half of a Put the application never waits for; ops.put times
	// only the synchronous snapshot-and-enqueue half.
	writerLat *obs.Histogram
	slots     chan struct{} // staging-buffer tokens (capacity = 2)
	jobs      chan asyncJob
	wg        sync.WaitGroup // pending + in-flight writes

	// opMu serializes Put/Flush/Close so a Flush cannot observe a Put
	// between its closed-check and its enqueue (and Close cannot close
	// the jobs channel under a concurrent send).
	opMu sync.Mutex

	mu     sync.Mutex
	err    error // first deferred write error (sticky)
	closed bool
}

type asyncJob struct {
	key      string
	sections []Section
}

// asyncBuffers is the number of staging buffers (double buffering).
const asyncBuffers = 2

// NewAsync wraps inner with the asynchronous write path.
func NewAsync(inner Backend) *Async {
	a := &Async{
		inner: inner,
		slots: make(chan struct{}, asyncBuffers),
		jobs:  make(chan asyncJob, asyncBuffers),
	}
	go a.writer()
	return a
}

// SetFaults implements FaultInjectable.
func (a *Async) SetFaults(r *faultinject.Registry) { a.faults = r }

// SetObs implements Observable.
func (a *Async) SetObs(r *obs.Registry) {
	a.ops = newOpSet(r, "store.async")
	a.writerLat = r.Histogram("store.async.writer.ns")
}

func (a *Async) writer() {
	for job := range a.jobs {
		var t0 time.Time
		if a.writerLat != nil {
			t0 = time.Now()
		}
		err := a.writeJob(job)
		if a.writerLat != nil {
			a.writerLat.ObserveSince(t0)
		}
		if err != nil {
			a.mu.Lock()
			if a.err == nil {
				a.err = err
			}
			a.mu.Unlock()
		}
		<-a.slots
		a.wg.Done()
	}
}

// writeJob persists one staged buffer. An injected crash panic is
// contained here and converted into the decorator's sticky deferred
// error — the dedicated writer "died", its buffered write is lost, and
// the next Put/Flush/Close reports it — instead of taking down the
// whole process from a goroutine no harness can recover. Real panics
// from the inner backend still propagate.
func (a *Async) writeJob(job asyncJob) (err error) {
	defer func() {
		if p := recover(); p != nil {
			c, ok := faultinject.AsCrash(p)
			if !ok {
				panic(p)
			}
			err = fmt.Errorf("store: async writer crashed: %w", c)
		}
	}()
	if ferr := a.faults.Hit(SiteAsyncWriter); ferr != nil {
		return ferr
	}
	return a.inner.Put(job.key, job.sections)
}

func (a *Async) deferredErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Put implements Backend: snapshot and enqueue, blocking only on buffer
// reuse. The recorded latency is the synchronous half only — what the
// application actually waits for; store.async.writer.ns has the persist.
func (a *Async) Put(key string, sections []Section) error {
	start := a.ops.put.Start()
	err := a.put(key, sections)
	a.ops.put.Done(start, 0, errClass(err))
	return err
}

func (a *Async) put(key string, sections []Section) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return errors.New("store: async backend closed")
	}
	if err := a.err; err != nil {
		a.mu.Unlock()
		return err
	}
	a.mu.Unlock()
	if err := a.faults.Hit(SiteAsyncPut); err != nil {
		return err
	}
	a.slots <- struct{}{} // blocks iff both staging buffers are in flight
	a.wg.Add(1)
	a.jobs <- asyncJob{key: key, sections: copySections(sections)}
	return nil
}

// Flush implements Backend: wait for queued writes and report the first
// deferred error.
func (a *Async) Flush() error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	return a.flush()
}

func (a *Async) flush() error {
	a.wg.Wait()
	if err := a.deferredErr(); err != nil {
		return err
	}
	return a.inner.Flush()
}

// drain waits for in-flight writes under opMu: sync.WaitGroup forbids a
// Wait concurrent with a Put's Add-from-zero, and holding opMu also
// guarantees a read started after a Put returned observes that write.
func (a *Async) drain() {
	a.opMu.Lock()
	a.wg.Wait()
	a.opMu.Unlock()
}

// Get implements Backend (flushes first). The recorded latency includes
// the drain wait, so store.async.get.ns minus the inner get is the cost
// of reading behind buffered writes.
func (a *Async) Get(key string) ([]Section, error) {
	start := a.ops.get.Start()
	a.drain()
	sections, err := a.inner.Get(key)
	a.ops.get.Done(start, 0, errClass(err))
	return sections, err
}

// List implements Backend (flushes first).
func (a *Async) List() ([]string, error) {
	a.drain()
	return a.inner.List()
}

// Delete implements Backend. Unlike the read-side operations, Delete
// holds opMu across both the drain and the inner delete: with the
// drain-then-release pattern a Put accepted in the window between the
// two could be applied by the background writer after the inner delete
// ran — or the delete could land between the Put's enqueue and its
// write, deleting nothing and letting the buffered write resurrect the
// object. Holding opMu makes Delete atomic with respect to Put: every
// Put that returned before Delete was called is drained and then
// deleted; every Put issued while Delete runs is applied after it.
func (a *Async) Delete(key string) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	a.wg.Wait()
	if err := a.faults.Hit(SiteAsyncDelete); err != nil {
		return err
	}
	return a.inner.Delete(key)
}

// Stats implements Backend (flushes first so the numbers are settled).
func (a *Async) Stats() Stats {
	a.drain()
	return a.inner.Stats()
}

// Dependencies forwards to the inner backend's resolver (flushes first:
// a dependency answer must reflect every Put already accepted).
func (a *Async) Dependencies(key string) ([]string, error) {
	a.drain()
	return DependenciesOf(a.inner, key)
}

// Close implements Backend: drain, stop the writer, close the inner
// backend.
func (a *Async) Close() error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	flushErr := a.flush()
	a.mu.Lock()
	alreadyClosed := a.closed
	a.closed = true
	a.mu.Unlock()
	if alreadyClosed {
		return flushErr
	}
	close(a.jobs)
	if err := a.inner.Close(); err != nil && flushErr == nil {
		flushErr = err
	}
	return flushErr
}

package store

import (
	"container/list"
	"errors"
	"sync"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Cached is a byte-bounded read-through/write-through LRU tier over a
// backend. It exists for remote bases, where a Get is a network round
// trip: a restart that re-reads recent checkpoints (or several restarts
// re-reading the same keyframe) is served from local memory instead.
//
// Entries are the encoded object blobs, so the byte bound accounts for
// real object size and every cache hit decodes a fresh deep copy —
// callers can never alias cached memory. Put writes through (inner
// first, cache on success), Delete evicts, and concurrent Gets of the
// same missing key are deduplicated: one leader performs the inner Get
// while the others wait and share its result, so N clients restarting
// from the same checkpoint cost one inner read.
//
// Coherence: the cache assumes it is the only writer to its namespace
// of the inner store, which is how the checkpoint layer uses it (one
// Context, one namespace). A second process writing the same keys
// behind the cache's back would be served stale objects until eviction.
type Cached struct {
	inner  Backend
	limit  int64
	faults *faultinject.Registry
	ops    opSet
	// Cache outcome counters mirrored into obs (nil when disabled):
	// hits/followers/misses, for /v1/metrics and bench snapshots.
	obsHits, obsFollowers, obsMisses *obs.Counter

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	size    int64
	flight  map[string]*flightCall
	delSeq  uint64 // bumped by every Delete; guards Put's post-write insert
	stats   Stats  // CacheHits/CacheMisses only; the rest is inner's
}

type cacheEntry struct {
	key  string
	blob []byte
}

// flightCall is one in-progress inner Get shared by concurrent callers.
type flightCall struct {
	done chan struct{}
	blob []byte
	err  error
	// stale is set (under c.mu) by a Put or Delete of the key while the
	// leader's inner read is in flight: whatever the leader got back no
	// longer reflects the inner store and must not populate the cache.
	stale bool
}

// DefaultCacheBytes is the cache bound when none is given.
const DefaultCacheBytes = int64(64) << 20

// errFlightAbandoned fails followers of a single-flight leader that
// panicked away; each follower retries and one of them re-reads.
var errFlightAbandoned = errors.New("store: cache read leader crashed")

// NewCached wraps inner with an LRU cache bounded to maxBytes of encoded
// objects (<= 0 selects DefaultCacheBytes).
func NewCached(inner Backend, maxBytes int64) *Cached {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cached{
		inner:   inner,
		limit:   maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flight:  make(map[string]*flightCall),
	}
}

// SetFaults implements FaultInjectable.
func (c *Cached) SetFaults(r *faultinject.Registry) { c.faults = r }

// SetObs implements Observable.
func (c *Cached) SetObs(r *obs.Registry) {
	c.ops = newOpSet(r, "store.cached")
	c.obsHits = r.Counter("store.cache.hits")
	c.obsFollowers = r.Counter("store.cache.follower_hits")
	c.obsMisses = r.Counter("store.cache.misses")
}

// invalidateFlight marks any in-progress single-flight read of key as
// stale so its result cannot repopulate the cache over this mutation.
// Caller holds c.mu.
func (c *Cached) invalidateFlight(key string) {
	if call, ok := c.flight[key]; ok {
		call.stale = true
	}
}

// insert adds or refreshes key's blob and evicts from the cold end until
// the bound holds. Objects larger than the whole bound are not cached.
// Caller holds c.mu.
func (c *Cached) insert(key string, blob []byte) {
	if int64(len(blob)) > c.limit {
		c.evict(key)
		return
	}
	if el, ok := c.entries[key]; ok {
		c.size += int64(len(blob)) - int64(len(el.Value.(*cacheEntry).blob))
		el.Value.(*cacheEntry).blob = blob
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, blob: blob})
		c.size += int64(len(blob))
	}
	for c.size > c.limit {
		cold := c.lru.Back()
		if cold == nil {
			break
		}
		c.removeElement(cold)
	}
}

func (c *Cached) evict(key string) {
	if el, ok := c.entries[key]; ok {
		c.removeElement(el)
	}
}

func (c *Cached) removeElement(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.size -= int64(len(e.blob))
}

// Put implements Backend: write through, then cache the encoded object.
// The extra encode (the inner backend also frames the object) is the
// price of populating on write, which lets a restart that re-reads the
// newest checkpoint hit without ever touching the inner store; it is
// only paid after the write lands.
func (c *Cached) Put(key string, sections []Section) error {
	start := c.ops.put.Start()
	err := c.put(key, sections)
	var n int64
	if err == nil {
		n = EncodedSize(sections)
	}
	c.ops.put.Done(start, n, errClass(err))
	return err
}

func (c *Cached) put(key string, sections []Section) error {
	c.mu.Lock()
	seq := c.delSeq
	c.mu.Unlock()
	if err := c.inner.Put(key, sections); err != nil {
		// The write may have partially (or wholly) replaced the inner
		// object; a cached copy of either generation could now be wrong,
		// and so could an in-flight leader's read of it.
		c.mu.Lock()
		c.invalidateFlight(key)
		c.evict(key)
		c.mu.Unlock()
		return err
	}
	blob := EncodeSections(sections)
	c.mu.Lock()
	c.invalidateFlight(key) // a leader mid-read now holds the older generation
	// A Delete that ran between the inner write and here has already
	// removed the inner object; caching the blob would serve a deleted
	// checkpoint forever. The global sequence is deliberately coarse —
	// deletes are rare (retention pruning), and skipping one cache fill
	// costs a future miss, not correctness.
	if seq == c.delSeq {
		c.insert(key, blob)
	}
	c.mu.Unlock()
	return nil
}

// Get implements Backend: cache hit, or a single-flighted inner read.
// When the flight leader's read fails, waiting followers do not adopt
// that error as their own answer: the flight entry is already cleared,
// so each follower retries from the top — one becomes the next leader —
// and only a leader's own inner error (or a definitive ErrNotFound) is
// ever returned to a caller. A transient blip on one read therefore
// fails one caller's read at most, instead of every piled-up restart.
func (c *Cached) Get(key string) ([]Section, error) {
	start := c.ops.get.Start()
	sections, n, err := c.get(key)
	c.ops.get.Done(start, n, errClass(err))
	return sections, err
}

func (c *Cached) get(key string) ([]Section, int64, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			blob := el.Value.(*cacheEntry).blob
			// Cache-served reads keep the uniform Get accounting the inner
			// backend would have recorded, plus the hit counter.
			c.stats.CacheHits++
			c.stats.Gets++
			c.stats.BytesRead += int64(len(blob))
			c.mu.Unlock()
			c.obsHits.Inc()
			sections, err := DecodeSections(blob)
			return sections, int64(len(blob)), err
		}
		if call, ok := c.flight[key]; ok {
			// Another Get of this key is already reading the inner
			// backend; share its result.
			c.mu.Unlock()
			<-call.done
			if call.err != nil {
				if call.err == ErrNotFound {
					// Absence is an answer, not a failure; retrying would
					// just re-read the inner store for the same no. Still
					// a follower hit: the shared flight avoided an inner
					// read, even though no cached object was involved.
					c.mu.Lock()
					c.stats.CacheFollowerHits++
					c.mu.Unlock()
					c.obsFollowers.Inc()
					return nil, 0, call.err
				}
				// The leader failed; this Get goes back around and does
				// its own read — nothing was avoided, nothing counted.
				continue
			}
			// Counted only now that the shared result is actually
			// consumed: the point of the stat is inner reads avoided.
			// A follower hit, not a cache hit — the object was never in
			// the LRU; another caller's in-flight read was shared.
			c.mu.Lock()
			c.stats.CacheFollowerHits++
			c.stats.Gets++
			c.stats.BytesRead += int64(len(call.blob))
			c.mu.Unlock()
			c.obsFollowers.Inc()
			sections, err := DecodeSections(call.blob)
			return sections, int64(len(call.blob)), err
		}
		call := &flightCall{done: make(chan struct{})}
		c.flight[key] = call
		c.stats.CacheMisses++
		c.mu.Unlock()
		c.obsMisses.Inc()

		sections, err := func() (_ []Section, err error) {
			// A panic out of the leader (an injected crash at this site
			// or inside the inner backend) must not strand followers on
			// a flight that will never complete: fail the flight, then
			// let the panic continue to the caller's crash boundary.
			defer func() {
				if p := recover(); p != nil {
					call.err = errFlightAbandoned
					c.mu.Lock()
					delete(c.flight, key)
					c.mu.Unlock()
					close(call.done)
					panic(p)
				}
			}()
			if err := c.faults.Hit(SiteCachedLeader); err != nil {
				return nil, err
			}
			return c.inner.Get(key)
		}()
		if err == nil {
			call.blob = EncodeSections(sections)
		}
		call.err = err
		c.mu.Lock()
		delete(c.flight, key)
		// A Put or Delete of this key during the inner read marked the
		// flight stale: the sections in hand belong to a superseded
		// generation (or to an object that no longer exists) and must
		// not repopulate the cache. The leader still returns them — its
		// read was correct when it was issued.
		if err == nil && !call.stale {
			c.insert(key, call.blob)
		}
		c.mu.Unlock()
		close(call.done)
		if err != nil {
			return nil, 0, err
		}
		return sections, int64(len(call.blob)), nil
	}
}

// List implements Backend (pass-through: the cache holds objects, not
// the key space).
func (c *Cached) List() ([]string, error) { return c.inner.List() }

// Delete implements Backend: delete through, evict locally even when the
// inner delete fails (a half-deleted object must not be served), and
// invalidate any in-flight read so a Get racing this Delete cannot
// re-populate the cache with the deleted blob.
func (c *Cached) Delete(key string) error {
	start := c.ops.del.Start()
	err := c.del(key)
	c.ops.del.Done(start, 0, errClass(err))
	return err
}

func (c *Cached) del(key string) error {
	err := c.inner.Delete(key)
	c.mu.Lock()
	c.delSeq++
	c.invalidateFlight(key)
	c.evict(key)
	c.mu.Unlock()
	return err
}

// Stats implements Backend: the inner backend's accounting plus this
// tier's hit/miss counters and cache-served reads.
func (c *Cached) Stats() Stats {
	s := c.inner.Stats()
	c.mu.Lock()
	s.CacheHits += c.stats.CacheHits
	s.CacheFollowerHits += c.stats.CacheFollowerHits
	s.CacheMisses += c.stats.CacheMisses
	s.Gets += c.stats.Gets
	s.BytesRead += c.stats.BytesRead
	c.mu.Unlock()
	return s
}

// Flush implements Backend.
func (c *Cached) Flush() error { return c.inner.Flush() }

// Close implements Backend: drop the cache and close the inner backend.
func (c *Cached) Close() error {
	c.mu.Lock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.size = 0
	c.mu.Unlock()
	return c.inner.Close()
}

// CachedBytes reports the current cache occupancy (tests and the
// examples walkthrough).
func (c *Cached) CachedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Dependencies forwards to the inner backend's resolver, if any.
func (c *Cached) Dependencies(key string) ([]string, error) {
	return DependenciesOf(c.inner, key)
}

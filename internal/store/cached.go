package store

import (
	"container/list"
	"sync"
)

// Cached is a byte-bounded read-through/write-through LRU tier over a
// backend. It exists for remote bases, where a Get is a network round
// trip: a restart that re-reads recent checkpoints (or several restarts
// re-reading the same keyframe) is served from local memory instead.
//
// Entries are the encoded object blobs, so the byte bound accounts for
// real object size and every cache hit decodes a fresh deep copy —
// callers can never alias cached memory. Put writes through (inner
// first, cache on success), Delete evicts, and concurrent Gets of the
// same missing key are deduplicated: one leader performs the inner Get
// while the others wait and share its result, so N clients restarting
// from the same checkpoint cost one inner read.
//
// Coherence: the cache assumes it is the only writer to its namespace
// of the inner store, which is how the checkpoint layer uses it (one
// Context, one namespace). A second process writing the same keys
// behind the cache's back would be served stale objects until eviction.
type Cached struct {
	inner Backend
	limit int64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	size    int64
	flight  map[string]*flightCall
	stats   Stats // CacheHits/CacheMisses only; the rest is inner's
}

type cacheEntry struct {
	key  string
	blob []byte
}

// flightCall is one in-progress inner Get shared by concurrent callers.
type flightCall struct {
	done chan struct{}
	blob []byte
	err  error
}

// DefaultCacheBytes is the cache bound when none is given.
const DefaultCacheBytes = int64(64) << 20

// NewCached wraps inner with an LRU cache bounded to maxBytes of encoded
// objects (<= 0 selects DefaultCacheBytes).
func NewCached(inner Backend, maxBytes int64) *Cached {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cached{
		inner:   inner,
		limit:   maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flight:  make(map[string]*flightCall),
	}
}

// insert adds or refreshes key's blob and evicts from the cold end until
// the bound holds. Objects larger than the whole bound are not cached.
// Caller holds c.mu.
func (c *Cached) insert(key string, blob []byte) {
	if int64(len(blob)) > c.limit {
		c.evict(key)
		return
	}
	if el, ok := c.entries[key]; ok {
		c.size += int64(len(blob)) - int64(len(el.Value.(*cacheEntry).blob))
		el.Value.(*cacheEntry).blob = blob
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, blob: blob})
		c.size += int64(len(blob))
	}
	for c.size > c.limit {
		cold := c.lru.Back()
		if cold == nil {
			break
		}
		c.removeElement(cold)
	}
}

func (c *Cached) evict(key string) {
	if el, ok := c.entries[key]; ok {
		c.removeElement(el)
	}
}

func (c *Cached) removeElement(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.size -= int64(len(e.blob))
}

// Put implements Backend: write through, then cache the encoded object.
// The extra encode (the inner backend also frames the object) is the
// price of populating on write, which lets a restart that re-reads the
// newest checkpoint hit without ever touching the inner store; it is
// only paid after the write lands.
func (c *Cached) Put(key string, sections []Section) error {
	if err := c.inner.Put(key, sections); err != nil {
		// The write may have partially (or wholly) replaced the inner
		// object; a cached copy of either generation could now be wrong.
		c.mu.Lock()
		c.evict(key)
		c.mu.Unlock()
		return err
	}
	blob := EncodeSections(sections)
	c.mu.Lock()
	c.insert(key, blob)
	c.mu.Unlock()
	return nil
}

// Get implements Backend: cache hit, or a single-flighted inner read.
func (c *Cached) Get(key string) ([]Section, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		blob := el.Value.(*cacheEntry).blob
		// Cache-served reads keep the uniform Get accounting the inner
		// backend would have recorded, plus the hit counter.
		c.stats.CacheHits++
		c.stats.Gets++
		c.stats.BytesRead += int64(len(blob))
		c.mu.Unlock()
		return DecodeSections(blob)
	}
	if call, ok := c.flight[key]; ok {
		// Another Get of this key is already reading the inner backend;
		// share its result. Counted as a hit: the point of the stat is
		// inner reads avoided.
		c.stats.CacheHits++
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		c.mu.Lock()
		c.stats.Gets++
		c.stats.BytesRead += int64(len(call.blob))
		c.mu.Unlock()
		return DecodeSections(call.blob)
	}
	call := &flightCall{done: make(chan struct{})}
	c.flight[key] = call
	c.stats.CacheMisses++
	c.mu.Unlock()

	sections, err := c.inner.Get(key)
	if err == nil {
		call.blob = EncodeSections(sections)
	}
	call.err = err
	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		c.insert(key, call.blob)
	}
	c.mu.Unlock()
	close(call.done)
	if err != nil {
		return nil, err
	}
	return sections, nil
}

// List implements Backend (pass-through: the cache holds objects, not
// the key space).
func (c *Cached) List() ([]string, error) { return c.inner.List() }

// Delete implements Backend: delete through, evict locally even when the
// inner delete fails (a half-deleted object must not be served).
func (c *Cached) Delete(key string) error {
	err := c.inner.Delete(key)
	c.mu.Lock()
	c.evict(key)
	c.mu.Unlock()
	return err
}

// Stats implements Backend: the inner backend's accounting plus this
// tier's hit/miss counters and cache-served reads.
func (c *Cached) Stats() Stats {
	s := c.inner.Stats()
	c.mu.Lock()
	s.CacheHits += c.stats.CacheHits
	s.CacheMisses += c.stats.CacheMisses
	s.Gets += c.stats.Gets
	s.BytesRead += c.stats.BytesRead
	c.mu.Unlock()
	return s
}

// Flush implements Backend.
func (c *Cached) Flush() error { return c.inner.Flush() }

// Close implements Backend: drop the cache and close the inner backend.
func (c *Cached) Close() error {
	c.mu.Lock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.size = 0
	c.mu.Unlock()
	return c.inner.Close()
}

// CachedBytes reports the current cache occupancy (tests and the
// examples walkthrough).
func (c *Cached) CachedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Dependencies forwards to the inner backend's resolver, if any.
func (c *Cached) Dependencies(key string) ([]string, error) {
	return DependenciesOf(c.inner, key)
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func sampleSections(seed byte) []Section {
	big := make([]byte, 2048)
	for i := range big {
		big[i] = byte(i) ^ seed
	}
	return []Section{
		{Name: "~ckpt", Data: []byte{seed, 1, 2, 3}},
		{Name: "x", Data: []byte{seed, 0xAA}},
		{Name: "arr", Data: big},
	}
}

// openAll returns one fresh instance of every backend/decorator
// combination under test, keyed by a descriptive name.
func openAll(t *testing.T) map[string]Backend {
	t.Helper()
	file, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	fileSync, err := NewFile(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(t.TempDir(), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	shardedSerial, err := NewSharded(t.TempDir(), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	asyncInner, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"memory":             NewMemory(),
		"file":               file,
		"file-sync":          fileSync,
		"sharded":            sharded,
		"sharded-serial":     shardedSerial,
		"async-file":         NewAsync(asyncInner),
		"incremental-memory": NewIncremental(NewMemory(), 3, 64),
		"async-incremental":  NewAsync(NewIncremental(NewMemory(), 3, 64)),
	}
}

func TestRoundtripAllBackends(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			for i := byte(1); i <= 5; i++ {
				key := fmt.Sprintf("ckpt-%06d", i)
				if err := b.Put(key, sampleSections(i)); err != nil {
					t.Fatalf("Put %s: %v", key, err)
				}
			}
			keys, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 5 {
				t.Fatalf("List = %v, want 5 keys", keys)
			}
			if !reflect.DeepEqual(keys, append([]string(nil), "ckpt-000001", "ckpt-000002", "ckpt-000003", "ckpt-000004", "ckpt-000005")) {
				t.Errorf("List not sorted: %v", keys)
			}
			for i := byte(1); i <= 5; i++ {
				got, err := b.Get(fmt.Sprintf("ckpt-%06d", i))
				if err != nil {
					t.Fatalf("Get %d: %v", i, err)
				}
				if want := sampleSections(i); !reflect.DeepEqual(got, want) {
					t.Errorf("Get %d: sections differ", i)
				}
			}
			if _, err := b.Get("ckpt-999999"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing = %v, want ErrNotFound", err)
			}
			st := b.Stats()
			if st.Puts != 5 || st.Gets < 5 || st.BytesWritten <= 0 {
				t.Errorf("Stats = %+v", st)
			}
		})
	}
}

func TestDeleteAllBackends(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("ckpt-000001"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("ckpt-000001"); err == nil {
				t.Error("Get after Delete succeeded")
			}
			if err := b.Delete("ckpt-000001"); !errors.Is(err, ErrNotFound) {
				t.Errorf("second Delete = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestPutOverwrites(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put("k", sampleSections(1)); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("k", sampleSections(9)); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, sampleSections(9)) {
				t.Error("overwrite not visible")
			}
		})
	}
}

// Every file-backed backend must reject a flipped bit anywhere in the
// object (the validation protocol's corruption experiments).
func TestFileBackendRejectsFlippedBit(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ckpt-000001")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Get("ckpt-000001"); err == nil {
			t.Errorf("flipped bit at %d accepted", off)
		}
	}
}

func TestFileBackendRejectsTornWrite(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ckpt-000001")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ckpt-000001"); err == nil {
		t.Error("torn (truncated) object accepted")
	}
}

func TestMemoryBackendRejectsCorruption(t *testing.T) {
	m := NewMemory()
	if err := m.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if !m.Corrupt("k", 40) {
		t.Fatal("Corrupt found no object")
	}
	if _, err := m.Get("k"); err == nil {
		t.Error("corrupted in-memory object accepted")
	}
}

func TestShardedRejectsCorruptShardAndManifest(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSharded(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the big section's shard.
	if !b.CorruptShard("ckpt-000001", 2, 100) {
		t.Fatal("CorruptShard found no shard")
	}
	if _, err := b.Get("ckpt-000001"); err == nil {
		t.Error("corrupted shard accepted")
	}
	// Fresh object; truncate a shard (torn write).
	if err := b.Put("ckpt-000002", sampleSections(2)); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, "ckpt-000002", "0002.shard")
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ckpt-000002"); err == nil {
		t.Error("torn shard accepted")
	}
	// Corrupt the manifest itself.
	if err := b.Put("ckpt-000003", sampleSections(3)); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "ckpt-000003", "manifest")
	mdata, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	mdata[len(mdata)/2] ^= 0xFF
	if err := os.WriteFile(manifest, mdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ckpt-000003"); err == nil {
		t.Error("corrupted manifest accepted")
	}
}

func TestShardedUncommittedObjectInvisible(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSharded(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash before the manifest landed.
	if err := os.Remove(filepath.Join(dir, "ckpt-000002", "manifest")); !os.IsNotExist(err) && err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "ckpt-000002"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-000002", "0000.shard"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"ckpt-000001"}) {
		t.Errorf("List = %v, want only the committed object", keys)
	}
}

// failingBackend fails every Nth Put, for async error propagation tests.
type failingBackend struct {
	*Memory
	mu    sync.Mutex
	puts  int
	every int
}

func (f *failingBackend) Put(key string, sections []Section) error {
	f.mu.Lock()
	f.puts++
	fail := f.every > 0 && f.puts%f.every == 0
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected write failure at put %d", f.puts)
	}
	return f.Memory.Put(key, sections)
}

func TestAsyncDeferredErrorSurfaces(t *testing.T) {
	a := NewAsync(&failingBackend{Memory: NewMemory(), every: 2})
	if err := a.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("ckpt-000002", sampleSections(2)); err != nil {
		t.Fatal(err) // enqueued; the failure is deferred
	}
	if err := a.Flush(); err == nil {
		t.Error("Flush swallowed the deferred write error")
	}
	if err := a.Put("ckpt-000003", sampleSections(3)); err == nil {
		t.Error("Put after deferred error succeeded")
	}
	if err := a.Close(); err == nil {
		t.Error("Close swallowed the deferred write error")
	}
}

func TestAsyncSnapshotsSections(t *testing.T) {
	inner := NewMemory()
	a := NewAsync(inner)
	defer a.Close()
	sections := sampleSections(1)
	if err := a.Put("k", sections); err != nil {
		t.Fatal(err)
	}
	// Mutate the caller's buffer after Put returns: the staged snapshot
	// must be unaffected.
	for i := range sections[2].Data {
		sections[2].Data[i] = 0xEE
	}
	got, err := a.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(1)) {
		t.Error("async write observed caller mutation (staging buffer aliases caller memory)")
	}
}

func TestAsyncManyWritesDrain(t *testing.T) {
	inner := NewMemory()
	a := NewAsync(inner)
	for i := 0; i < 50; i++ {
		if err := a.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := inner.Stats(); st.Puts != 50 {
		t.Errorf("inner puts = %d, want 50", st.Puts)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalReconstruction(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 64)
	big := make([]byte, 1024)
	want := make(map[string][]Section)
	for i := 1; i <= 10; i++ {
		key := fmt.Sprintf("ckpt-%06d", i)
		// "stable" never changes; big changes one chunk-sized region per
		// put; "counter" changes every put.
		copy(big[(i%4)*128:], bytes.Repeat([]byte{byte(i)}, 16))
		sections := []Section{
			{Name: "stable", Data: []byte{1, 2, 3, 4}},
			{Name: "big", Data: append([]byte(nil), big...)},
			{Name: "counter", Data: []byte{byte(i)}},
		}
		want[key] = copySections(sections)
		if err := inc.Put(key, sections); err != nil {
			t.Fatal(err)
		}
	}
	for key, sections := range want {
		got, err := inc.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		if !reflect.DeepEqual(got, sections) {
			t.Errorf("Get %s: reconstruction differs", key)
		}
	}
	st := inc.Stats()
	if st.Keyframes != 3 || st.Deltas != 7 { // puts 1,5,9 are keyframes
		t.Errorf("keyframes=%d deltas=%d, want 3/7", st.Keyframes, st.Deltas)
	}
	if st.SectionsSkipped == 0 {
		t.Error("stable section never skipped")
	}
}

func TestIncrementalWritesFewerBytes(t *testing.T) {
	plainInner, incInner := NewMemory(), NewMemory()
	plain := Backend(plainInner)
	inc := NewIncremental(incInner, 8, 64)
	big := make([]byte, 4096)
	for i := 1; i <= 16; i++ {
		big[i] = byte(i) // one byte changes per iteration
		sections := []Section{
			{Name: "input", Data: make([]byte, 2048)}, // never changes
			{Name: "big", Data: append([]byte(nil), big...)},
		}
		key := fmt.Sprintf("ckpt-%06d", i)
		if err := plain.Put(key, copySections(sections)); err != nil {
			t.Fatal(err)
		}
		if err := inc.Put(key, sections); err != nil {
			t.Fatal(err)
		}
	}
	pw, iw := plainInner.Stats().BytesWritten, incInner.Stats().BytesWritten
	if iw >= pw {
		t.Errorf("incremental wrote %d bytes, plain %d — expected a reduction", iw, pw)
	}
	// Both must still reconstruct the same final object.
	a, err := plain.Get("ckpt-000016")
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Get("ckpt-000016")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("incremental reconstruction diverges from plain storage")
	}
}

func TestIncrementalMissingKeyframeFails(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 64)
	for i := 1; i <= 3; i++ {
		if err := inc.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := inner.Delete("ckpt-000001"); err != nil { // the keyframe
		t.Fatal(err)
	}
	if _, err := inc.Get("ckpt-000003"); err == nil {
		t.Error("delta resolved without its keyframe")
	}
}

func TestEncodeDecodeSections(t *testing.T) {
	sections := sampleSections(7)
	blob := EncodeSections(sections)
	if int64(len(blob)) != EncodedSize(sections) {
		t.Errorf("EncodedSize = %d, len = %d", EncodedSize(sections), len(blob))
	}
	got, err := DecodeSections(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sections) {
		t.Error("roundtrip differs")
	}
	for _, bad := range [][]byte{nil, blob[:8], blob[:len(blob)-1]} {
		if _, err := DecodeSections(bad); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", len(bad))
		}
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"file": KindFile, "": KindFile, "memory": KindMemory, "mem": KindMemory, "sharded": KindSharded} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("s3"); err == nil {
		t.Error("ParseKind(s3) succeeded")
	}
}

func TestOpenAndDecorate(t *testing.T) {
	for _, cfg := range []Config{
		{Kind: KindMemory},
		{Kind: KindFile, Dir: t.TempDir()},
		{Kind: KindSharded, Dir: t.TempDir(), Workers: 2},
		{Kind: KindMemory, Async: true},
		{Kind: KindMemory, Incremental: true, Keyframe: 2},
		{Kind: KindFile, Dir: t.TempDir(), Async: true, Incremental: true},
	} {
		base, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open(%+v): %v", cfg, err)
		}
		b := Decorate(base, cfg)
		if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got, err := b.Get("ckpt-000001")
		if err != nil || len(got) != 3 {
			t.Fatalf("%+v: Get = %v, %v", cfg, got, err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%+v: Close: %v", cfg, err)
		}
	}
	for _, cfg := range []Config{{Kind: KindFile}, {Kind: KindSharded}, {Kind: Kind(42)}} {
		if _, err := Open(cfg); err == nil {
			t.Errorf("Open(%+v) succeeded", cfg)
		}
	}
}

package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func sampleSections(seed byte) []Section {
	big := make([]byte, 2048)
	for i := range big {
		big[i] = byte(i) ^ seed
	}
	return []Section{
		{Name: "~ckpt", Data: []byte{seed, 1, 2, 3}},
		{Name: "x", Data: []byte{seed, 0xAA}},
		{Name: "arr", Data: big},
	}
}

// openAll returns one fresh instance of every backend/decorator
// combination under test, keyed by a descriptive name.
func openAll(t *testing.T) map[string]Backend {
	t.Helper()
	file, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	fileSync, err := NewFile(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(t.TempDir(), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	shardedSerial, err := NewSharded(t.TempDir(), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	shardedSync, err := NewSharded(t.TempDir(), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	asyncInner, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	cachedFile, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	svc := newFakeService(t)
	remote := fastRemote(t, svc.srv.URL, "all")
	remoteCached := fastRemote(t, svc.srv.URL, "all-cached")
	replicated, err := NewReplicated([]Backend{NewMemory(), NewMemory(), NewMemory()}, ReplicatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	replicatedRemote, err := NewReplicated([]Backend{
		fastRemote(t, svc.srv.URL, "all-rep-r0"),
		fastRemote(t, svc.srv.URL, "all-rep-r1"),
		fastRemote(t, svc.srv.URL, "all-rep-r2"),
	}, ReplicatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"memory":             NewMemory(),
		"file":               file,
		"file-sync":          fileSync,
		"sharded":            sharded,
		"sharded-serial":     shardedSerial,
		"sharded-sync":       shardedSync,
		"async-file":         NewAsync(asyncInner),
		"incremental-memory": NewIncremental(NewMemory(), 3, 64),
		"async-incremental":  NewAsync(NewIncremental(NewMemory(), 3, 64)),
		"cached-memory":      NewCached(NewMemory(), 1<<20),
		"cached-file":        NewCached(cachedFile, 1<<20),
		"remote":             remote,
		"remote-cached":      NewCached(remoteCached, 1<<20),
		"replicated":         replicated,
		"replicated-remote":  replicatedRemote,
	}
}

func TestRoundtripAllBackends(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			for i := byte(1); i <= 5; i++ {
				key := fmt.Sprintf("ckpt-%06d", i)
				if err := b.Put(key, sampleSections(i)); err != nil {
					t.Fatalf("Put %s: %v", key, err)
				}
			}
			keys, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 5 {
				t.Fatalf("List = %v, want 5 keys", keys)
			}
			if !reflect.DeepEqual(keys, append([]string(nil), "ckpt-000001", "ckpt-000002", "ckpt-000003", "ckpt-000004", "ckpt-000005")) {
				t.Errorf("List not sorted: %v", keys)
			}
			for i := byte(1); i <= 5; i++ {
				got, err := b.Get(fmt.Sprintf("ckpt-%06d", i))
				if err != nil {
					t.Fatalf("Get %d: %v", i, err)
				}
				if want := sampleSections(i); !reflect.DeepEqual(got, want) {
					t.Errorf("Get %d: sections differ", i)
				}
			}
			if _, err := b.Get("ckpt-999999"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing = %v, want ErrNotFound", err)
			}
			st := b.Stats()
			if st.Puts != 5 || st.Gets < 5 || st.BytesWritten <= 0 {
				t.Errorf("Stats = %+v", st)
			}
		})
	}
}

func TestDeleteAllBackends(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("ckpt-000001"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("ckpt-000001"); err == nil {
				t.Error("Get after Delete succeeded")
			}
			if err := b.Delete("ckpt-000001"); !errors.Is(err, ErrNotFound) {
				t.Errorf("second Delete = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestPutOverwrites(t *testing.T) {
	for name, b := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if err := b.Put("k", sampleSections(1)); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("k", sampleSections(9)); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, sampleSections(9)) {
				t.Error("overwrite not visible")
			}
		})
	}
}

// Every file-backed backend must reject a flipped bit anywhere in the
// object (the validation protocol's corruption experiments).
func TestFileBackendRejectsFlippedBit(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ckpt-000001")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Get("ckpt-000001"); err == nil {
			t.Errorf("flipped bit at %d accepted", off)
		}
	}
}

func TestFileBackendRejectsTornWrite(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ckpt-000001")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ckpt-000001"); err == nil {
		t.Error("torn (truncated) object accepted")
	}
}

func TestMemoryBackendRejectsCorruption(t *testing.T) {
	m := NewMemory()
	if err := m.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if !m.Corrupt("k", 40) {
		t.Fatal("Corrupt found no object")
	}
	if _, err := m.Get("k"); err == nil {
		t.Error("corrupted in-memory object accepted")
	}
}

func TestShardedRejectsCorruptShardAndManifest(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSharded(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the big section's shard.
	if !b.CorruptShard("ckpt-000001", 2, 100) {
		t.Fatal("CorruptShard found no shard")
	}
	if _, err := b.Get("ckpt-000001"); err == nil {
		t.Error("corrupted shard accepted")
	}
	// Fresh object; truncate a shard (torn write).
	if err := b.Put("ckpt-000002", sampleSections(2)); err != nil {
		t.Fatal(err)
	}
	shard, ok := b.ShardPath("ckpt-000002", 2)
	if !ok {
		t.Fatal("ShardPath found no shard")
	}
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ckpt-000002"); err == nil {
		t.Error("torn shard accepted")
	}
	// Corrupt the manifest itself.
	if err := b.Put("ckpt-000003", sampleSections(3)); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "ckpt-000003", "manifest")
	mdata, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	mdata[len(mdata)/2] ^= 0xFF
	if err := os.WriteFile(manifest, mdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ckpt-000003"); err == nil {
		t.Error("corrupted manifest accepted")
	}
}

// Overwriting a key must leave the previously committed object readable
// until the new manifest lands: a Put that crashes after writing its
// shards loses only the new version, never both.
func TestShardedOverwritePreservesOldUntilCommit(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSharded(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate an overwrite that crashed after writing its new-generation
	// shards but before committing the manifest.
	objDir := filepath.Join(dir, "k")
	if err := os.WriteFile(filepath.Join(objDir, "g00000002-0000.shard"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("k")
	if err != nil {
		t.Fatalf("old object lost after crashed overwrite: %v", err)
	}
	if !reflect.DeepEqual(got, sampleSections(1)) {
		t.Error("old object corrupted by crashed overwrite")
	}
	// After a "process restart", a completed overwrite must pick a
	// generation above both the committed object and the crashed
	// attempt's orphans, commit the new version, and sweep every stale
	// generation.
	b2, err := NewSharded(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Put("k", sampleSections(5)); err != nil {
		t.Fatal(err)
	}
	got, err = b2.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(5)) {
		t.Error("overwrite not visible")
	}
	entries, err := os.ReadDir(objDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "manifest" && !strings.HasPrefix(e.Name(), "g00000003-") {
			t.Errorf("stale file %s survived the committed overwrite", e.Name())
		}
	}
}

// A manifest that decodes with a valid CRC but holds a truncated entry
// must fail cleanly, not panic on a short slice.
func TestShardedShortManifestEntryRejected(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSharded(dir, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	bad := EncodeSections([]Section{
		{Name: "~gen", Data: binary.LittleEndian.AppendUint64(nil, 1)},
		{Name: "x", Data: []byte{1, 2, 3}},
	})
	if err := os.WriteFile(filepath.Join(dir, "k", "manifest"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k"); err == nil {
		t.Error("short manifest entry accepted")
	}
	// A manifest missing its generation section must also fail cleanly.
	noGen := EncodeSections([]Section{{Name: "x", Data: make([]byte, 12)}})
	if err := os.WriteFile(filepath.Join(dir, "k", "manifest"), noGen, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k"); err == nil {
		t.Error("manifest without generation accepted")
	}
}

// Concurrent Puts to the same key must serialize: interleaved
// generations would commit a manifest whose CRCs describe another Put's
// shards, leaving the key unreadable despite every Put returning nil.
// Concurrent Gets must survive the post-commit sweep of the generation
// their manifest referenced (the sweep waits for in-flight readers, who
// hold sweepMu's read side across their manifest and shard reads).
func TestShardedConcurrentPutsSameKey(t *testing.T) {
	b, err := NewSharded(t.TempDir(), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := b.Put("k", sampleSections(byte(w*16+i+1))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := b.Get("k"); err != nil {
					t.Errorf("Get of committed key during overwrites: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := b.Get("k")
	if err != nil {
		t.Fatalf("object unreadable after concurrent overwrites: %v", err)
	}
	if len(got) != 3 {
		t.Errorf("Get returned %d sections, want 3", len(got))
	}
}

func TestShardedUncommittedObjectInvisible(t *testing.T) {
	dir := t.TempDir()
	b, err := NewSharded(dir, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash before the manifest landed.
	if err := os.Remove(filepath.Join(dir, "ckpt-000002", "manifest")); !os.IsNotExist(err) && err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "ckpt-000002"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-000002", "0000.shard"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"ckpt-000001"}) {
		t.Errorf("List = %v, want only the committed object", keys)
	}
}

// failingBackend fails every Nth Put, for async error propagation tests.
type failingBackend struct {
	*Memory
	mu    sync.Mutex
	puts  int
	every int
}

func (f *failingBackend) Put(key string, sections []Section) error {
	f.mu.Lock()
	f.puts++
	fail := f.every > 0 && f.puts%f.every == 0
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected write failure at put %d", f.puts)
	}
	return f.Memory.Put(key, sections)
}

func TestAsyncDeferredErrorSurfaces(t *testing.T) {
	a := NewAsync(&failingBackend{Memory: NewMemory(), every: 2})
	if err := a.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("ckpt-000002", sampleSections(2)); err != nil {
		t.Fatal(err) // enqueued; the failure is deferred
	}
	if err := a.Flush(); err == nil {
		t.Error("Flush swallowed the deferred write error")
	}
	if err := a.Put("ckpt-000003", sampleSections(3)); err == nil {
		t.Error("Put after deferred error succeeded")
	}
	if err := a.Close(); err == nil {
		t.Error("Close swallowed the deferred write error")
	}
}

func TestAsyncSnapshotsSections(t *testing.T) {
	inner := NewMemory()
	a := NewAsync(inner)
	defer a.Close()
	sections := sampleSections(1)
	if err := a.Put("k", sections); err != nil {
		t.Fatal(err)
	}
	// Mutate the caller's buffer after Put returns: the staged snapshot
	// must be unaffected.
	for i := range sections[2].Data {
		sections[2].Data[i] = 0xEE
	}
	got, err := a.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(1)) {
		t.Error("async write observed caller mutation (staging buffer aliases caller memory)")
	}
}

func TestAsyncManyWritesDrain(t *testing.T) {
	inner := NewMemory()
	a := NewAsync(inner)
	for i := 0; i < 50; i++ {
		if err := a.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := inner.Stats(); st.Puts != 50 {
		t.Errorf("inner puts = %d, want 50", st.Puts)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent Puts and reads must be race-free: sync.WaitGroup forbids a
// Wait concurrent with an Add from zero, so the read-side drain has to
// serialize with Put. Run under -race to catch regressions.
func TestAsyncConcurrentReadersAndWriters(t *testing.T) {
	a := NewAsync(NewMemory())
	defer a.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("ckpt-%02d%04d", w, i)
				if err := a.Put(key, sampleSections(byte(i))); err != nil {
					t.Error(err)
					return
				}
				// A read started after Put returned must observe the write.
				if _, err := a.Get(key); err != nil {
					t.Errorf("Get %s after Put: %v", key, err)
					return
				}
				a.Stats()
				if _, err := a.List(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestIncrementalReconstruction(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 64)
	big := make([]byte, 1024)
	want := make(map[string][]Section)
	for i := 1; i <= 10; i++ {
		key := fmt.Sprintf("ckpt-%06d", i)
		// "stable" never changes; big changes one chunk-sized region per
		// put; "counter" changes every put.
		copy(big[(i%4)*128:], bytes.Repeat([]byte{byte(i)}, 16))
		sections := []Section{
			{Name: "stable", Data: []byte{1, 2, 3, 4}},
			{Name: "big", Data: append([]byte(nil), big...)},
			{Name: "counter", Data: []byte{byte(i)}},
		}
		want[key] = copySections(sections)
		if err := inc.Put(key, sections); err != nil {
			t.Fatal(err)
		}
	}
	for key, sections := range want {
		got, err := inc.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		if !reflect.DeepEqual(got, sections) {
			t.Errorf("Get %s: reconstruction differs", key)
		}
	}
	st := inc.Stats()
	if st.Keyframes != 3 || st.Deltas != 7 { // puts 1,5,9 are keyframes
		t.Errorf("keyframes=%d deltas=%d, want 3/7", st.Keyframes, st.Deltas)
	}
	if st.SectionsSkipped == 0 {
		t.Error("stable section never skipped")
	}
}

func TestIncrementalWritesFewerBytes(t *testing.T) {
	plainInner, incInner := NewMemory(), NewMemory()
	plain := Backend(plainInner)
	inc := NewIncremental(incInner, 8, 64)
	big := make([]byte, 4096)
	for i := 1; i <= 16; i++ {
		big[i] = byte(i) // one byte changes per iteration
		sections := []Section{
			{Name: "input", Data: make([]byte, 2048)}, // never changes
			{Name: "big", Data: append([]byte(nil), big...)},
		}
		key := fmt.Sprintf("ckpt-%06d", i)
		if err := plain.Put(key, copySections(sections)); err != nil {
			t.Fatal(err)
		}
		if err := inc.Put(key, sections); err != nil {
			t.Fatal(err)
		}
	}
	pw, iw := plainInner.Stats().BytesWritten, incInner.Stats().BytesWritten
	if iw >= pw {
		t.Errorf("incremental wrote %d bytes, plain %d — expected a reduction", iw, pw)
	}
	// Both must still reconstruct the same final object.
	a, err := plain.Get("ckpt-000016")
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Get("ckpt-000016")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("incremental reconstruction diverges from plain storage")
	}
}

// A delta left over from an earlier session must not resolve against a
// keyframe written over its base by a later session: without the
// predecessor-digest binding, Get would patch stale chunks onto the new
// keyframe and fabricate state that never existed.
func TestIncrementalStaleDeltaRejected(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 64)
	for i := 1; i <= 3; i++ {
		if err := inc.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A new session over the same store starts with fresh decorator state
	// and overwrites the keyframe; the surviving session-1 deltas now
	// reference base content that no longer exists.
	inc2 := NewIncremental(inner, 4, 64)
	if err := inc2.Put("ckpt-000001", sampleSections(9)); err != nil {
		t.Fatal(err)
	}
	for _, stale := range []string{"ckpt-000002", "ckpt-000003"} {
		if _, err := inc2.Get(stale); err == nil {
			t.Errorf("stale delta %s resolved against the overwritten keyframe", stale)
		}
	}
	got, err := inc2.Get("ckpt-000001")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSections(9)) {
		t.Error("new keyframe unreadable")
	}
}

// A delta written by the retired pre-digest format (kind byte 1) must be
// rejected explicitly, not misparsed with key bytes as a digest.
func TestIncrementalRejectsObsoleteDeltaFormat(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 64)
	if err := inc.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	old := []Section{
		{Name: "~incr", Data: append([]byte{1}, "ckpt-000001"...)},
		{Name: "x", Data: []byte{0, 1, 2}},
	}
	if err := inner.Put("ckpt-000002", old); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Get("ckpt-000002"); err == nil {
		t.Error("obsolete delta format accepted")
	}
}

// A failed delta write must not advance the diff basis: the next
// successful delta has to re-carry the changes the failed one lost, or
// reconstruction silently drops them.
func TestIncrementalFailedPutDoesNotAdvanceBasis(t *testing.T) {
	failing := &failingBackend{Memory: NewMemory()}
	inc := NewIncremental(failing, 8, 64)
	sections := func(v byte) []Section {
		return []Section{{Name: "x", Data: []byte{v, v, v, v}}}
	}
	if err := inc.Put("ckpt-000001", sections(1)); err != nil {
		t.Fatal(err)
	}
	failing.mu.Lock()
	failing.every = 1 // fail the next put
	failing.mu.Unlock()
	if err := inc.Put("ckpt-000002", sections(2)); err == nil {
		t.Fatal("injected failure not reported")
	}
	failing.mu.Lock()
	failing.every = 0
	failing.mu.Unlock()
	if err := inc.Put("ckpt-000003", sections(2)); err != nil {
		t.Fatal(err)
	}
	got, err := inc.Get("ckpt-000003")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sections(2)) {
		t.Errorf("reconstruction lost the change from the failed put: %v", got)
	}
}

func TestIncrementalMissingKeyframeFails(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 4, 64)
	for i := 1; i <= 3; i++ {
		if err := inc.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := inner.Delete("ckpt-000001"); err != nil { // the keyframe
		t.Fatal(err)
	}
	if _, err := inc.Get("ckpt-000003"); err == nil {
		t.Error("delta resolved without its keyframe")
	}
}

func TestEncodeDecodeSections(t *testing.T) {
	sections := sampleSections(7)
	blob := EncodeSections(sections)
	if int64(len(blob)) != EncodedSize(sections) {
		t.Errorf("EncodedSize = %d, len = %d", EncodedSize(sections), len(blob))
	}
	got, err := DecodeSections(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sections) {
		t.Error("roundtrip differs")
	}
	for _, bad := range [][]byte{nil, blob[:8], blob[:len(blob)-1]} {
		if _, err := DecodeSections(bad); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", len(bad))
		}
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"file": KindFile, "": KindFile, "memory": KindMemory, "mem": KindMemory, "sharded": KindSharded} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("s3"); err == nil {
		t.Error("ParseKind(s3) succeeded")
	}
}

func TestOpenAndDecorate(t *testing.T) {
	for _, cfg := range []Config{
		{Kind: KindMemory},
		{Kind: KindFile, Dir: t.TempDir()},
		{Kind: KindSharded, Dir: t.TempDir(), Workers: 2},
		{Kind: KindMemory, Async: true},
		{Kind: KindMemory, Incremental: true, Keyframe: 2},
		{Kind: KindFile, Dir: t.TempDir(), Async: true, Incremental: true},
	} {
		base, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open(%+v): %v", cfg, err)
		}
		b := Decorate(base, cfg)
		if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got, err := b.Get("ckpt-000001")
		if err != nil || len(got) != 3 {
			t.Fatalf("%+v: Get = %v, %v", cfg, got, err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%+v: Close: %v", cfg, err)
		}
	}
	for _, cfg := range []Config{{Kind: KindFile}, {Kind: KindSharded}, {Kind: Kind(42)}} {
		if _, err := Open(cfg); err == nil {
			t.Errorf("Open(%+v) succeeded", cfg)
		}
	}
}

package store

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck/internal/faultinject"
)

// baseBackends returns one fresh instance of each base backend with the
// given registry armed on it.
func baseBackends(t *testing.T, reg *faultinject.Registry) map[string]Backend {
	t.Helper()
	file, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(t.TempDir(), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]Backend{"memory": NewMemory(), "file": file, "sharded": sharded}
	for _, b := range all {
		InjectFaults(b, reg)
	}
	return all
}

func TestInjectedPutErrorAbortsCommit(t *testing.T) {
	for name := range baseBackends(t, nil) {
		t.Run(name, func(t *testing.T) {
			reg := faultinject.NewRegistry(1)
			reg.Arm(faultinject.Failpoint{Site: SitePut, Action: faultinject.ActionError, Nth: 2})
			b := baseBackends(t, reg)[name]
			defer b.Close()
			if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
				t.Fatalf("first put: %v", err)
			}
			err := b.Put("ckpt-000002", sampleSections(2))
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("second put = %v, want injected error", err)
			}
			// The aborted put committed nothing; the first object is intact.
			if _, err := b.Get("ckpt-000002"); !errors.Is(err, ErrNotFound) {
				t.Errorf("aborted put left a readable object (err=%v)", err)
			}
			if _, err := b.Get("ckpt-000001"); err != nil {
				t.Errorf("first object damaged: %v", err)
			}
		})
	}
}

func TestInjectedTornWriteIsRejectedOnGet(t *testing.T) {
	for name := range baseBackends(t, nil) {
		t.Run(name, func(t *testing.T) {
			reg := faultinject.NewRegistry(7)
			reg.Arm(faultinject.Failpoint{Site: SitePut, Action: faultinject.ActionTorn, Nth: 2})
			b := baseBackends(t, reg)[name]
			defer b.Close()
			if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
				t.Fatalf("first put: %v", err)
			}
			err := b.Put("ckpt-000002", sampleSections(2))
			if !faultinject.IsTorn(err) {
				t.Fatalf("second put = %v, want torn-write error", err)
			}
			// The torn object reached the medium, so the read path — not the
			// write path — must be the line of defense.
			if _, err := b.Get("ckpt-000002"); err == nil || errors.Is(err, ErrNotFound) {
				t.Errorf("torn object served or invisible (err=%v), want verification failure", err)
			}
			if _, err := b.Get("ckpt-000001"); err != nil {
				t.Errorf("first object damaged by the torn write: %v", err)
			}
			// With the failpoint spent, a rewrite repairs the key.
			if err := b.Put("ckpt-000002", sampleSections(3)); err != nil {
				t.Fatalf("repair put: %v", err)
			}
			if _, err := b.Get("ckpt-000002"); err != nil {
				t.Errorf("repaired object unreadable: %v", err)
			}
		})
	}
}

func TestInjectedGetAndDeleteErrors(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteGet, Action: faultinject.ActionError, Nth: 1})
	reg.Arm(faultinject.Failpoint{Site: SiteDelete, Action: faultinject.ActionError, Nth: 1})
	b := NewMemory()
	b.SetFaults(reg)
	if err := b.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("first get = %v, want injected", err)
	}
	if _, err := b.Get("k"); err != nil {
		t.Fatalf("second get: %v", err)
	}
	if err := b.Delete("k"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("first delete = %v, want injected", err)
	}
	if _, err := b.Get("k"); err != nil {
		t.Fatalf("object gone after failed delete: %v", err)
	}
}

func TestAsyncWriterCrashBecomesDeferredError(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteAsyncWriter, Action: faultinject.ActionCrash, Nth: 1})
	inner := NewMemory()
	a := NewAsync(inner)
	a.SetFaults(reg)
	if err := a.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put (accepted into staging): %v", err)
	}
	err := a.Flush()
	if err == nil || !strings.Contains(err.Error(), "async writer crashed") {
		t.Fatalf("flush = %v, want writer-crash error", err)
	}
	// The crash is sticky and the decorator stays shut down cleanly: the
	// next Put reports it, Close reports it, nothing panics the process.
	if err := a.Put("ckpt-000002", sampleSections(2)); err == nil {
		t.Error("put after writer crash succeeded")
	}
	if err := a.Close(); err == nil || !strings.Contains(err.Error(), "async writer crashed") {
		t.Errorf("close = %v, want writer-crash error", err)
	}
	if _, err := inner.Get("ckpt-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("crashed write landed anyway (err=%v)", err)
	}
}

// TestAsyncDeleteOrderedAgainstConcurrentPut pins the fix for the
// delete/buffered-put race: Delete holds the operation lock across its
// drain AND the inner delete, so a Put issued while the delete is in
// progress is applied strictly after it — it can never be applied by
// the background writer first and then deleted (lost update), nor can
// the delete land between enqueue and write so the buffered Put
// resurrects the object.
func TestAsyncDeleteOrderedAgainstConcurrentPut(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{
		Site: SiteAsyncDelete, Action: faultinject.ActionDelay, Nth: 1, Delay: 50 * time.Millisecond,
	})
	inner := NewMemory()
	a := NewAsync(inner)
	a.SetFaults(reg)
	defer a.Close()
	if err := a.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- a.Delete("k") }()
	// Wait until the delete is parked inside its critical section (the
	// delay failpoint has fired), then issue a Put of the same key. With
	// the fix it must serialize after the delete; before the fix it
	// could be written by the background writer and then destroyed by
	// the still-running delete.
	for reg.Fired() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.Put("k", sampleSections(9)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get("k")
	if err != nil {
		t.Fatalf("the put issued during the delete was lost: %v", err)
	}
	if string(got[0].Data) != string(sampleSections(9)[0].Data) {
		t.Fatal("object content is not the concurrent put's")
	}
}

// TestAsyncDeleteWaitsForBufferedPut: a Delete issued after a Put
// returned (but while the write is still buffered behind a slow writer)
// must apply after that write — the object ends up absent, not
// resurrected by the late write.
func TestAsyncDeleteWaitsForBufferedPut(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{
		Site: SiteAsyncWriter, Action: faultinject.ActionDelay, Nth: 1, Delay: 30 * time.Millisecond,
	})
	inner := NewMemory()
	a := NewAsync(inner)
	a.SetFaults(reg)
	defer a.Close()
	if err := a.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	// The write is buffered (the writer is sleeping in the failpoint).
	if err := a.Delete("k"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := a.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("buffered put resurrected the deleted object (err=%v)", err)
	}
	if _, err := inner.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("inner store still holds the object (err=%v)", err)
	}
}

func TestIncrementalDeleteOfIntermediateDeltaBreaksChainTyped(t *testing.T) {
	inner := NewMemory()
	inc := NewIncremental(inner, 100, 64) // one keyframe, then deltas only
	keys := []string{"ckpt-000001", "ckpt-000002", "ckpt-000003", "ckpt-000004"}
	for i, k := range keys {
		sections := sampleSections(byte(i + 1))
		if err := inc.Put(k, sections); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	// Retention via DependenciesOf would refuse this: deleting an
	// intermediate delta out from under a retained chain.
	if err := inc.Delete("ckpt-000003"); err != nil {
		t.Fatal(err)
	}
	_, err := inc.Get("ckpt-000004")
	var broken *ChainBrokenError
	if !errors.As(err, &broken) {
		t.Fatalf("get past the hole = %v, want *ChainBrokenError", err)
	}
	if broken.Key != "ckpt-000004" {
		t.Errorf("broken.Key = %q", broken.Key)
	}
	// Earlier links are still reconstructible.
	if _, err := inc.Get("ckpt-000002"); err != nil {
		t.Errorf("delta before the hole unreadable: %v", err)
	}
	// Deleting the keyframe breaks every delta, typed the same way.
	if err := inc.Delete("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Get("ckpt-000002"); !errors.As(err, &broken) {
		t.Fatalf("get with keyframe gone = %v, want *ChainBrokenError", err)
	}
}

func TestIncrementalDependenciesProtectIntermediates(t *testing.T) {
	// The Retain path must keep intermediate deltas alive: every delta's
	// dependency set includes the whole chain up to itself.
	inner := NewMemory()
	inc := NewIncremental(inner, 100, 64)
	keys := []string{"ckpt-000001", "ckpt-000002", "ckpt-000003"}
	for i, k := range keys {
		if err := inc.Put(k, sampleSections(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	deps, err := DependenciesOf(inc, "ckpt-000003")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(deps) != fmt.Sprint(keys) {
		t.Fatalf("Dependencies = %v, want %v", deps, keys)
	}
}

func TestOpenArmsFaultsAcrossTheChain(t *testing.T) {
	reg := faultinject.NewRegistry(3)
	reg.Arm(faultinject.Failpoint{Site: SiteIncrementalPut, Action: faultinject.ActionError, Nth: 1})
	base, err := Open(Config{Kind: KindMemory, CacheMB: 1, Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	b := Decorate(base, Config{Incremental: true, Async: true, Faults: reg})
	defer b.Close()
	// The incremental decorator sits under async, so its injected error
	// surfaces as the async deferred error — proof both layers are armed.
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put (staged): %v", err)
	}
	if err := b.Flush(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("flush = %v, want the incremental layer's injected error", err)
	}
}

func TestConcurrentHitsUnderRace(t *testing.T) {
	// Registry evaluation under concurrent sites (for the -race step).
	reg := faultinject.NewRegistry(5)
	reg.Arm(faultinject.Failpoint{Site: SiteGet, Action: faultinject.ActionError, EveryK: 3})
	b := NewMemory()
	b.SetFaults(reg)
	if err := b.Put("k", sampleSections(1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Get("k")
			}
		}()
	}
	wg.Wait()
	if fired := reg.Fired(); fired != 400/3 {
		t.Fatalf("every=3 fired %d times over 400 hits, want %d", fired, 400/3)
	}
}

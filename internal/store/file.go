package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// File is the single-file backend: one object per file under dir, the
// on-disk format the original internal/checkpoint hand-rolled, extracted
// behind the Backend interface. Writes go through a temp file + rename so
// a crash mid-write never leaves a half-object under the real key; a torn
// rename is still caught by the CRC framing on Get.
type File struct {
	dir    string
	sync   bool
	faults *faultinject.Registry
	ops    opSet

	mu    sync.Mutex
	stats Stats
}

// SetFaults implements FaultInjectable.
func (f *File) SetFaults(r *faultinject.Registry) { f.faults = r }

// SetObs implements Observable.
func (f *File) SetObs(r *obs.Registry) { f.ops = newOpSet(r, "store.file") }

const tmpSuffix = ".tmp"

// NewFile creates (if needed) dir and returns a file backend over it.
// When sync is set every write is fsynced before rename (checkpoint level
// L4's "stable storage" semantics).
func NewFile(dir string, sync bool) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &File{dir: dir, sync: sync}, nil
}

func (f *File) path(key string) string { return filepath.Join(f.dir, key) }

// Put implements Backend.
func (f *File) Put(key string, sections []Section) error {
	start := f.ops.put.Start()
	n, err := f.put(key, sections)
	f.ops.put.Done(start, n, errClass(err))
	return err
}

func (f *File) put(key string, sections []Section) (int64, error) {
	blob := EncodeSections(sections)
	blob, ferr := f.faults.HitBlob(SitePut, blob)
	if ferr != nil && !faultinject.IsTorn(ferr) {
		return 0, ferr
	}
	// A torn injection commits the truncated blob through the same
	// atomic-rename path — modelling a write torn below the rename
	// boundary (a partial page, a lying disk) that Get's CRC must catch.
	if err := writeFileAtomic(f.path(key), blob, f.sync); err != nil {
		return 0, err
	}
	if ferr != nil {
		return int64(len(blob)), ferr
	}
	f.mu.Lock()
	f.stats.Puts++
	f.stats.BytesWritten += int64(len(blob))
	f.stats.SectionsWritten += int64(len(sections))
	f.mu.Unlock()
	return int64(len(blob)), nil
}

func writeFileAtomic(path string, data []byte, sync bool) error {
	return writeFileAtomicOpts(path, data, sync, sync)
}

// writeFileAtomicOpts writes data via temp file + rename. syncFile fsyncs
// the data before the rename; syncParent fsyncs the parent directory
// after it — the rename itself is only durable once the directory entry
// is on stable storage, and without it a power failure can roll the key
// back to its previous object (or to nothing). Callers batching many
// files into one directory pass syncParent=false and sync the directory
// once themselves.
func writeFileAtomicOpts(path string, data []byte, syncFile, syncParent bool) error {
	tmp := path + tmpSuffix
	w, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		os.Remove(tmp)
		return err
	}
	if syncFile {
		if err := w.Sync(); err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if syncParent {
		return syncDir(filepath.Dir(path))
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Get implements Backend.
func (f *File) Get(key string) ([]Section, error) {
	start := f.ops.get.Start()
	sections, n, err := f.get(key)
	f.ops.get.Done(start, n, errClass(err))
	return sections, err
}

func (f *File) get(key string) ([]Section, int64, error) {
	if err := f.faults.Hit(SiteGet); err != nil {
		return nil, 0, err
	}
	blob, err := os.ReadFile(f.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, ErrNotFound
	}
	if err != nil {
		return nil, 0, err
	}
	f.mu.Lock()
	f.stats.Gets++
	f.stats.BytesRead += int64(len(blob))
	f.mu.Unlock()
	sections, err := DecodeSections(blob)
	return sections, int64(len(blob)), err
}

// List implements Backend.
func (f *File) List() ([]string, error) {
	start := f.ops.list.Start()
	keys, err := f.list()
	f.ops.list.Done(start, 0, errClass(err))
	return keys, err
}

func (f *File) list() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), tmpSuffix) {
			continue
		}
		keys = append(keys, e.Name())
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Backend.
func (f *File) Delete(key string) error {
	start := f.ops.del.Start()
	err := f.del(key)
	f.ops.del.Done(start, 0, errClass(err))
	return err
}

func (f *File) del(key string) error {
	if err := f.faults.Hit(SiteDelete); err != nil {
		return err
	}
	err := os.Remove(f.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.stats.Deletes++
	f.mu.Unlock()
	return nil
}

// Stats implements Backend.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Flush implements Backend (writes are durable on return from Put).
func (f *File) Flush() error { return nil }

// Close implements Backend.
func (f *File) Close() error { return nil }

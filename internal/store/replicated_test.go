package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"autocheck/internal/faultinject"
)

// newReplicatedMemory builds a 3-node cluster over memory backends and
// hands back the raw replicas for per-node assertions.
func newReplicatedMemory(t *testing.T, opts ReplicatedOptions) (*Replicated, []*Memory) {
	t.Helper()
	mems := []*Memory{NewMemory(), NewMemory(), NewMemory()}
	backends := make([]Backend, len(mems))
	for i, m := range mems {
		backends[i] = m
	}
	rep, err := NewReplicated(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep, mems
}

func TestReplicatedOptionsValidation(t *testing.T) {
	if _, err := NewReplicated(nil, ReplicatedOptions{}); err == nil {
		t.Error("0 replicas accepted")
	}
	three := []Backend{NewMemory(), NewMemory(), NewMemory()}
	if _, err := NewReplicated(three, ReplicatedOptions{WriteQuorum: 4}); err == nil {
		t.Error("W > N accepted")
	}
	if _, err := NewReplicated(three, ReplicatedOptions{ReadQuorum: -1}); err == nil {
		t.Error("negative R accepted")
	}
	rep, err := NewReplicated(three, ReplicatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if w, r := rep.Quorums(); w != 2 || r != 2 {
		t.Errorf("default quorums = %d/%d, want majority 2/2", w, r)
	}
	if rep.Replicas() != 3 {
		t.Errorf("Replicas() = %d", rep.Replicas())
	}
}

// TestReplicatedWriteQuorum: with W=2 of 3 a persistently failing
// replica is absorbed; with W=3 the same fault fails the Put with the
// unavailable class.
func TestReplicatedWriteQuorum(t *testing.T) {
	rep, mems := newReplicatedMemory(t, ReplicatedOptions{WriteQuorum: 2})
	defer rep.Close()
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteReplicaPut(2), Action: faultinject.ActionError, From: 1})
	rep.SetFaults(reg)
	for i := 1; i <= 3; i++ {
		if err := rep.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatalf("W=2 put %d: %v", i, err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i, m := range mems[:2] {
		if keys, _ := m.List(); len(keys) != 3 {
			t.Errorf("replica %d holds %d keys, want 3", i, len(keys))
		}
	}
	if keys, _ := mems[2].List(); len(keys) != 0 {
		t.Errorf("faulted replica holds %d keys, want 0", len(keys))
	}

	strict, _ := newReplicatedMemory(t, ReplicatedOptions{WriteQuorum: 3})
	defer strict.Close()
	reg2 := faultinject.NewRegistry(1)
	reg2.Arm(faultinject.Failpoint{Site: SiteReplicaPut(2), Action: faultinject.ActionError, From: 1})
	strict.SetFaults(reg2)
	err := strict.Put("ckpt-000001", sampleSections(1))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("W=3 put with a dead replica = %v, want ErrUnavailable", err)
	}
}

// TestReplicatedReadRepairAfterDiskCorruption is the divergence test:
// write through W=1, corrupt one replica's blob on disk, and check that
// a quorum read detects the corruption, serves the good copy, restores
// the corrupted replica byte-identically, and counts the repair.
func TestReplicatedReadRepairAfterDiskCorruption(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	backends := make([]Backend, 3)
	for i, dir := range dirs {
		f, err := NewFile(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = f
	}
	rep, err := NewReplicated(backends, ReplicatedOptions{WriteQuorum: 1, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	const key = "ckpt-000001"
	want := sampleSections(7)
	if err := rep.Put(key, want); err != nil {
		t.Fatal(err)
	}
	// W=1 acks after the first replica; Flush is the all-replica barrier
	// that settles the stragglers.
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte of replica 0's object behind the store's back.
	path0 := filepath.Join(dirs[0], key)
	blob, err := os.ReadFile(path0)
	if err != nil {
		t.Fatal(err)
	}
	blob[20] ^= 0xFF
	if err := os.WriteFile(path0, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := rep.Get(key)
	if err != nil {
		t.Fatalf("Get over a corrupted replica: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Get did not return the intact copy")
	}
	if st := rep.Stats(); st.Repairs != 1 {
		t.Errorf("Stats.Repairs = %d, want 1", st.Repairs)
	}
	repaired, err := os.ReadFile(path0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dirs[1], key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, good) {
		t.Error("read-repair did not restore the replica byte-identically")
	}
}

// TestReplicatedScrubRepairsDivergence: a replica that missed every
// write (partitioned during the fault phase) is restored by one scrub
// sweep without any client read touching the divergent keys.
func TestReplicatedScrubRepairsDivergence(t *testing.T) {
	rep, mems := newReplicatedMemory(t, ReplicatedOptions{WriteQuorum: 2})
	defer rep.Close()
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteReplicaPut(2), Action: faultinject.ActionError, From: 1})
	rep.SetFaults(reg)
	for i := 1; i <= 4; i++ {
		if err := rep.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	reg.DisarmAll() // the partition heals

	scanned, repaired, err := rep.ScrubOnce()
	if err != nil {
		t.Fatalf("ScrubOnce: %v", err)
	}
	if scanned != 4 || repaired != 4 {
		t.Errorf("ScrubOnce = (%d scanned, %d repaired), want (4, 4)", scanned, repaired)
	}
	for i := 1; i <= 4; i++ {
		key := fmt.Sprintf("ckpt-%06d", i)
		got, err := mems[2].Get(key)
		if err != nil {
			t.Fatalf("replica 2 %s after scrub: %v", key, err)
		}
		if !reflect.DeepEqual(got, sampleSections(byte(i))) {
			t.Errorf("replica 2 %s differs after scrub", key)
		}
	}
	if st := rep.Stats(); st.Repairs != 4 {
		t.Errorf("Stats.Repairs = %d, want 4", st.Repairs)
	}
	// A second sweep finds nothing to do.
	if _, repaired, _ := rep.ScrubOnce(); repaired != 0 {
		t.Errorf("second scrub repaired %d replicas, want 0", repaired)
	}
}

// TestReplicatedHedgedRead: with one slow replica and R=1, the hedge
// timer asks a second node and its fast answer wins.
func TestReplicatedHedgedRead(t *testing.T) {
	rep, _ := newReplicatedMemory(t, ReplicatedOptions{ReadQuorum: 1, HedgeAfter: 2 * time.Millisecond})
	defer rep.Close()
	const key = "ckpt-000001"
	want := sampleSections(3)
	if err := rep.Put(key, want); err != nil {
		t.Fatal(err)
	}
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteReplicaGet(0), Action: faultinject.ActionDelay, From: 1, Delay: 200 * time.Millisecond})
	rep.SetFaults(reg)

	t0 := time.Now()
	got, err := rep.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("hedged Get returned wrong sections")
	}
	if d := time.Since(t0); d >= 200*time.Millisecond {
		t.Errorf("hedged Get took %v, the slow replica's full delay", d)
	}
	st := rep.Stats()
	if st.HedgesFired != 1 || st.HedgesWon != 1 {
		t.Errorf("hedge stats = fired %d / won %d, want 1/1", st.HedgesFired, st.HedgesWon)
	}
}

// TestReplicatedHedgingDisabled: HedgeAfter < 0 never hedges — the Get
// waits out the slow replica.
func TestReplicatedHedgingDisabled(t *testing.T) {
	rep, _ := newReplicatedMemory(t, ReplicatedOptions{ReadQuorum: 1, HedgeAfter: -1})
	defer rep.Close()
	const key = "ckpt-000001"
	if err := rep.Put(key, sampleSections(3)); err != nil {
		t.Fatal(err)
	}
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteReplicaGet(0), Action: faultinject.ActionDelay, From: 1, Delay: 20 * time.Millisecond})
	rep.SetFaults(reg)
	t0 := time.Now()
	if _, err := rep.Get(key); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Errorf("Get took %v with hedging disabled, want the full slow-replica delay", d)
	}
	if st := rep.Stats(); st.HedgesFired != 0 {
		t.Errorf("HedgesFired = %d with hedging disabled", st.HedgesFired)
	}
}

// TestReplicatedCrashKillsReplica: an injected crash at a replica's put
// site behaves like node death — that replica stops applying anything,
// the cluster keeps serving reads and quorum writes.
func TestReplicatedCrashKillsReplica(t *testing.T) {
	rep, mems := newReplicatedMemory(t, ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	defer rep.Close()
	reg := faultinject.NewRegistry(1)
	reg.Arm(faultinject.Failpoint{Site: SiteReplicaPut(1), Action: faultinject.ActionCrash, Nth: 2})
	rep.SetFaults(reg)
	for i := 1; i <= 3; i++ {
		if err := rep.Put(fmt.Sprintf("ckpt-%06d", i), sampleSections(byte(i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush with one dead node: %v", err)
	}
	// The node died on its second write: only the first landed there.
	if keys, _ := mems[1].List(); len(keys) != 1 {
		t.Errorf("crashed replica holds %d keys, want 1", len(keys))
	}
	// Reads route around the corpse.
	for i := 1; i <= 3; i++ {
		got, err := rep.Get(fmt.Sprintf("ckpt-%06d", i))
		if err != nil {
			t.Fatalf("get %d with one dead node: %v", i, err)
		}
		if !reflect.DeepEqual(got, sampleSections(byte(i))) {
			t.Errorf("get %d: wrong sections", i)
		}
	}
}

// TestReplicatedValidBeatsNotFound: with W=1 a write may have reached
// only one node; a quorum read that sees {valid, not-found} must return
// the valid copy and repair the laggard.
func TestReplicatedValidBeatsNotFound(t *testing.T) {
	rep, mems := newReplicatedMemory(t, ReplicatedOptions{WriteQuorum: 1, ReadQuorum: 3})
	defer rep.Close()
	const key = "ckpt-000001"
	want := sampleSections(9)
	// Plant the object on replica 1 only, behind the tier's back.
	if err := mems[1].Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := rep.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("valid copy did not beat NotFound answers")
	}
	if st := rep.Stats(); st.Repairs != 2 {
		t.Errorf("Stats.Repairs = %d, want 2", st.Repairs)
	}
	for i := 0; i < 3; i++ {
		if _, err := mems[i].Get(key); err != nil {
			t.Errorf("replica %d after read-repair: %v", i, err)
		}
	}
}

// TestReplicatedOpenStack: store.Open wires Kind=KindReplicated over
// remote endpoints, and the cache tier composes on top.
func TestReplicatedOpenStack(t *testing.T) {
	svcs := []*fakeService{newFakeService(t), newFakeService(t), newFakeService(t)}
	addrs := make([]string, len(svcs))
	for i, s := range svcs {
		addrs[i] = s.srv.URL
	}
	b, err := Open(Config{Kind: KindReplicated, Addrs: addrs, Namespace: "open-stack", CacheMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	want := sampleSections(5)
	if err := b.Put("ckpt-000001", want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("ckpt-000001")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("round trip through Open(replicated)+cache differs")
	}
	// The default write quorum is 2 of 3: at least two services hold it.
	holders := 0
	for _, s := range svcs {
		if _, err := s.backend("open-stack").Get("ckpt-000001"); err == nil {
			holders++
		}
	}
	if holders < 2 {
		t.Errorf("object on %d services, want >= write quorum 2", holders)
	}
	if _, err := Open(Config{Kind: KindReplicated}); err == nil {
		t.Error("Open(replicated) without Addrs accepted")
	}
}

// TestReplicatedSurvivesDeadEndpoint: one replica address points at a
// dead listener; FailFastDial (set by Open) keeps quorum operations
// prompt instead of burning the whole retry budget per op.
func TestReplicatedSurvivesDeadEndpoint(t *testing.T) {
	svcs := []*fakeService{newFakeService(t), newFakeService(t)}
	addrs := []string{svcs[0].srv.URL, svcs[1].srv.URL, deadListenerAddr(t)}
	b, err := Open(Config{Kind: KindReplicated, Addrs: addrs, Namespace: "dead-end"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	t0 := time.Now()
	if err := b.Put("ckpt-000001", sampleSections(1)); err != nil {
		t.Fatalf("put with one dead endpoint: %v", err)
	}
	if _, err := b.Get("ckpt-000001"); err != nil {
		t.Fatalf("get with one dead endpoint: %v", err)
	}
	// Generous bound: the point is that nobody waited out a 15s retry
	// budget against the dead endpoint.
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("quorum ops took %v with a dead endpoint", d)
	}
}

// Package store is the checkpoint storage engine: a pluggable Backend
// interface over keyed, sectioned objects, with three concrete backends
// (in-memory, single-file, sharded-file) and two write-path decorators
// (asynchronous double-buffered writes and delta/incremental objects).
//
// A checkpoint is stored as one object per key; an object is an ordered
// list of named sections — for the checkpoint layer, one section per
// protected variable plus a small metadata section. Keeping sections
// first-class lets the sharded backend write one shard per variable from
// a worker pool, and lets the incremental decorator re-write only the
// variables whose content hash changed since the previous checkpoint
// (FTI-style differential checkpointing).
//
// Keys must sort lexicographically in chronological order (the checkpoint
// layer uses zero-padded sequence numbers); the incremental decorator and
// the restart path both rely on List() order for recovery.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/obs"
)

// Section is one named chunk of an object. The checkpoint layer writes
// one section per protected variable.
type Section struct {
	Name string
	Data []byte
}

// Stats is the cumulative accounting a backend reports. Decorators fold
// their own counters into the inner backend's numbers.
type Stats struct {
	Puts, Gets, Deletes int64
	BytesWritten        int64 // bytes handed to the persistence medium
	BytesRead           int64
	SectionsWritten     int64
	SectionsSkipped     int64 // unchanged sections elided by the incremental decorator
	Keyframes, Deltas   int64 // incremental decorator object kinds
	CacheHits           int64 // Gets served by a cached object without an inner read
	CacheFollowerHits   int64 // Gets served by sharing another caller's in-flight inner read
	CacheMisses         int64 // Gets that had to reach the inner backend
	Repairs             int64 // replicas overwritten by read-repair or the scrubber
	HedgesFired         int64 // replicated Gets that launched a hedge request
	HedgesWon           int64 // hedge requests that produced the winning answer
}

// ErrNotFound is returned by Get and Delete for a missing key.
var ErrNotFound = errors.New("store: object not found")

// ErrCorrupt is returned by Get when the CRC framing rejects a torn or
// bit-flipped object. The message keeps the historical wording.
var ErrCorrupt = errors.New("store: object CRC mismatch (corrupted)")

// Backend is a keyed object store for checkpoint images.
//
// Implementations must be safe for concurrent use. Get must verify
// integrity (every backend frames objects with a CRC-32) and fail rather
// than return torn or bit-flipped data — the checkpoint layer's restart
// falls back to an older checkpoint on any Get error.
type Backend interface {
	// Put persists the object under key, replacing any previous object.
	Put(key string, sections []Section) error
	// Get retrieves and verifies the object.
	Get(key string) ([]Section, error)
	// List returns all keys in lexicographic (= chronological) order.
	List() ([]string, error)
	// Delete removes an object (ErrNotFound if absent).
	Delete(key string) error
	// Stats reports cumulative accounting.
	Stats() Stats
	// Flush blocks until queued writes are durable and reports the first
	// deferred write error (asynchronous decorator); no-op otherwise.
	Flush() error
	// Close flushes and releases resources.
	Close() error
}

// Kind selects a concrete backend.
type Kind int

// Backend kinds. KindFile is the zero value so a zero Config preserves
// the original on-disk behavior of internal/checkpoint.
const (
	KindFile Kind = iota
	KindMemory
	KindSharded
	KindRemote
	KindReplicated
)

func (k Kind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindMemory:
		return "memory"
	case KindSharded:
		return "sharded"
	case KindRemote:
		return "remote"
	case KindReplicated:
		return "replicated"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a backend name as accepted by the -store CLI flag.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "file", "":
		return KindFile, nil
	case "memory", "mem":
		return KindMemory, nil
	case "sharded", "shard":
		return KindSharded, nil
	case "remote":
		return KindRemote, nil
	case "replicated":
		return KindReplicated, nil
	}
	return 0, fmt.Errorf("store: unknown backend kind %q (want file, memory, sharded, remote, or replicated)", s)
}

// Config selects and parameterizes a backend chain.
type Config struct {
	Kind    Kind
	Dir     string // root directory (file and sharded kinds); namespace seed (remote kind)
	Sync    bool   // fsync every write (checkpoint level L4)
	Workers int    // sharded write pool size (default 4)

	Addr      string // remote kind: checkpoint service address (host:port or URL)
	Namespace string // remote/replicated kinds: key namespace on the service (default: derived from Dir)
	CacheMB   int    // wrap the base backend with a read-through LRU cache of this many MB

	// Replicated kind: the cluster's service addresses plus quorum and
	// tail-latency policy. See NewReplicated for the semantics and
	// defaults of each knob.
	Addrs       []string      // replica service addresses, in replica-index order
	WriteQuorum int           // Put succeeds after this many replica acks (default majority)
	ReadQuorum  int           // Get decides after this many definitive replica answers (default majority)
	HedgeAfter  time.Duration // hedge a slow replica read after this long (0 = default, <0 = disabled)
	ScrubEvery  time.Duration // background scrub cadence (0 = disabled; ScrubOnce is always available)

	Async       bool // wrap with the async double-buffered decorator
	Incremental bool // wrap with the delta/incremental decorator
	Keyframe    int  // incremental: full checkpoint every N puts (default 8)
	ChunkBytes  int  // incremental: intra-section diff granularity (default 256)

	// Faults, when set, arms deterministic fault injection on every
	// layer Open/Decorate construct. nil (the default) leaves the sites
	// as nil checks — the hot paths are unchanged.
	Faults *faultinject.Registry

	// Obs, when set, arms per-operation telemetry (latency histograms,
	// byte counters, error-class counters, retry spans) on every layer
	// Open/Decorate construct. nil (the default) leaves each call site
	// as a nil check — disabled telemetry costs nothing on hot paths.
	Obs *obs.Registry
}

// Failpoint sites of the store package. The base backends share one set
// of role-named sites (exactly one base sits in any chain, so a schedule
// like "store.put=torn@nth=3" means the same thing on every stack);
// decorators get their own.
const (
	// SitePut guards a base backend's object commit and carries the
	// encoded blob (HitBlob): error aborts before the medium is touched,
	// torn persists a truncated object, crash kills the goroutine
	// mid-commit. For the sharded backend the site guards the manifest —
	// its commit point.
	SitePut = "store.put"
	// SiteGet guards a base backend's object read.
	SiteGet = "store.get"
	// SiteDelete guards a base backend's object removal.
	SiteDelete = "store.delete"
	// SiteAsyncPut fires on the synchronous half of an async Put, before
	// the sections are staged.
	SiteAsyncPut = "async.put"
	// SiteAsyncWriter fires on the background writer, before it hands a
	// staged buffer to the inner backend; errors and crashes surface as
	// the decorator's deferred write error.
	SiteAsyncWriter = "async.writer"
	// SiteAsyncDelete fires inside Async.Delete's critical section,
	// after pending writes drained and before the inner delete — the
	// exact window of the delete/buffered-put ordering race.
	SiteAsyncDelete = "async.delete"
	// SiteIncrementalPut fires before the incremental decorator decides
	// between keyframe and delta.
	SiteIncrementalPut = "incr.put"
	// SiteCachedLeader fires on a cache miss's single-flight leader,
	// after it won the flight and before it reads the inner backend —
	// the window in which a concurrent Delete or failing leader must not
	// poison followers.
	SiteCachedLeader = "cached.get.leader"
	// SiteRemoteDo fires before every HTTP attempt of the remote client,
	// injected failures counting as transient network errors against the
	// retry budget.
	SiteRemoteDo = "remote.do"
	// SiteReplicatedScrub fires once per key the scrubber examines, on
	// the scrub sweep goroutine; a crash aborts the sweep (the scrubber
	// dies, the store survives).
	SiteReplicatedScrub = "store.replicated.scrub"
)

// Per-replica failpoint sites of the replicated tier: each replica's
// write queue and read path evaluate their own sites, so a chaos
// schedule can kill, partition, or slow exactly one node of the cluster
// deterministically. Hit order per site is deterministic because every
// replica applies its own operations in submission order.
func SiteReplicaPut(i int) string    { return fmt.Sprintf("store.replicated.r%d.put", i) }
func SiteReplicaGet(i int) string    { return fmt.Sprintf("store.replicated.r%d.get", i) }
func SiteReplicaDelete(i int) string { return fmt.Sprintf("store.replicated.r%d.delete", i) }

// FaultInjectable is implemented by every backend and decorator in this
// package: SetFaults arms (or, with nil, disarms) the layer's own
// failpoint sites. It does not recurse — Open and Decorate arm each
// layer as they build the chain.
type FaultInjectable interface {
	SetFaults(*faultinject.Registry)
}

// InjectFaults arms b's own failpoint sites when it has any.
func InjectFaults(b Backend, r *faultinject.Registry) {
	if fi, ok := b.(FaultInjectable); ok {
		fi.SetFaults(r)
	}
}

// Observable is implemented by every backend and decorator in this
// package: SetObs arms (or, with nil, disarms) the layer's telemetry.
// Like SetFaults it does not recurse — Open and Decorate arm each layer
// as they build the chain. Instrument names follow "store.<layer>.<op>".
type Observable interface {
	SetObs(*obs.Registry)
}

// InjectObs arms b's own telemetry when it has any.
func InjectObs(b Backend, r *obs.Registry) {
	if o, ok := b.(Observable); ok {
		o.SetObs(r)
	}
}

// opSet bundles the per-operation recorders one layer holds. The zero
// value (the disabled state) is fully no-op: each recorder is nil and
// its Start/Done calls reduce to a nil check without reading the clock.
type opSet struct {
	put, get, del, list *obs.Op
}

// newOpSet resolves the four standard per-op recorders for a layer
// ("store.memory", "store.cached", ...). A nil registry yields the
// disabled zero value.
func newOpSet(r *obs.Registry, layer string) opSet {
	if r == nil {
		return opSet{}
	}
	return opSet{
		put:  r.Op(layer + ".put"),
		get:  r.Op(layer + ".get"),
		del:  r.Op(layer + ".delete"),
		list: r.Op(layer + ".list"),
	}
}

// errClass buckets an operation error for telemetry; "" means success.
// The classes are the failure modes an operator acts on differently:
// not_found (expected absence), corrupt (CRC framing rejected the
// object), chain_broken (incremental delta chain unreconstructable),
// unavailable (a replica endpoint is down — dial refused or quorum
// lost), injected (deterministic fault injection, so chaos runs don't
// read as real faults), and io for everything else.
func errClass(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, ErrNotFound) {
		return "not_found"
	}
	if errors.Is(err, ErrCorrupt) {
		return "corrupt"
	}
	if errors.Is(err, ErrUnavailable) {
		return "unavailable"
	}
	if errors.Is(err, faultinject.ErrInjected) {
		return "injected"
	}
	var chain *ChainBrokenError
	if errors.As(err, &chain) {
		return "chain_broken"
	}
	return "io"
}

// Open constructs the base backend selected by cfg, including the cache
// tier when cfg.CacheMB is set — the cache is a property of how the base
// store is reached (it must sit below the reliability/incremental/async
// decorators so replicas and deltas are cached like any other object),
// not a write-path decorator; see Decorate for those.
func Open(cfg Config) (Backend, error) {
	b, err := openBase(cfg)
	if err != nil {
		return nil, err
	}
	InjectFaults(b, cfg.Faults)
	InjectObs(b, cfg.Obs)
	if cfg.CacheMB > 0 {
		b = NewCached(b, int64(cfg.CacheMB)<<20)
		InjectFaults(b, cfg.Faults)
		InjectObs(b, cfg.Obs)
	}
	return b, nil
}

func openBase(cfg Config) (Backend, error) {
	switch cfg.Kind {
	case KindMemory:
		return NewMemory(), nil
	case KindFile:
		if cfg.Dir == "" {
			return nil, errors.New("store: file backend needs a directory")
		}
		return NewFile(cfg.Dir, cfg.Sync)
	case KindSharded:
		if cfg.Dir == "" {
			return nil, errors.New("store: sharded backend needs a directory")
		}
		return NewSharded(cfg.Dir, cfg.Workers, cfg.Sync)
	case KindRemote:
		if cfg.Addr == "" {
			return nil, errors.New("store: remote backend needs a service address")
		}
		ns := cfg.Namespace
		if ns == "" {
			ns = NamespaceForDir(cfg.Dir)
		}
		return NewRemote(cfg.Addr, ns)
	case KindReplicated:
		if len(cfg.Addrs) == 0 {
			return nil, errors.New("store: replicated backend needs replica addresses (Addrs)")
		}
		ns := cfg.Namespace
		if ns == "" {
			ns = NamespaceForDir(cfg.Dir)
		}
		replicas := make([]Backend, len(cfg.Addrs))
		for i, addr := range cfg.Addrs {
			rem, err := NewRemote(addr, ns)
			if err != nil {
				for _, r := range replicas[:i] {
					r.Close()
				}
				return nil, fmt.Errorf("store: replica %d: %w", i, err)
			}
			// A dead replica must fail fast so the tier moves on to the
			// next one; the single-endpoint remote keeps its patient
			// dial retries (it has nowhere else to go).
			rem.FailFastDial = true
			replicas[i] = rem
		}
		return NewReplicated(replicas, ReplicatedOptions{
			WriteQuorum: cfg.WriteQuorum,
			ReadQuorum:  cfg.ReadQuorum,
			HedgeAfter:  cfg.HedgeAfter,
			ScrubEvery:  cfg.ScrubEvery,
		})
	}
	return nil, fmt.Errorf("store: unknown backend kind %d", cfg.Kind)
}

// Decorate applies the write-path decorators requested by cfg to b
// (incremental innermost, async outermost: the async layer snapshots the
// sections up front, so deltas are computed against a consistent copy
// even though they run on the background writer).
func Decorate(b Backend, cfg Config) Backend {
	if cfg.Incremental {
		b = NewIncremental(b, cfg.Keyframe, cfg.ChunkBytes)
		InjectFaults(b, cfg.Faults)
		InjectObs(b, cfg.Obs)
	}
	if cfg.Async {
		b = NewAsync(b)
		InjectFaults(b, cfg.Faults)
		InjectObs(b, cfg.Obs)
	}
	return b
}

// Object framing shared by the file-like backends: a small header, the
// sections, and a trailing CRC-32 that detects torn or bit-flipped
// objects.
const (
	objectMagic   = uint32(0x41435331) // "ACS1"
	objectVersion = uint32(1)
)

// EncodeSections frames sections as a single self-verifying byte object.
func EncodeSections(sections []Section) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, objectMagic)
	buf = binary.LittleEndian.AppendUint32(buf, objectVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	for _, s := range sections {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Data)))
		buf = append(buf, s.Data...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// EncodedSize returns len(EncodeSections(sections)) without encoding.
func EncodedSize(sections []Section) int64 {
	n := int64(16) // header + CRC
	for _, s := range sections {
		n += 12 + int64(len(s.Name)) + int64(len(s.Data))
	}
	return n
}

// DecodeSections verifies and parses an object produced by
// EncodeSections.
func DecodeSections(buf []byte) ([]Section, error) {
	if len(buf) < 16 {
		return nil, errors.New("store: object too short")
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(body[0:4]) != objectMagic ||
		binary.LittleEndian.Uint32(body[4:8]) != objectVersion {
		return nil, errors.New("store: bad object magic or version")
	}
	n := int(binary.LittleEndian.Uint32(body[8:12]))
	rest := body[12:]
	sections := make([]Section, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return nil, errors.New("store: truncated section header")
		}
		nameLen := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < nameLen+8 {
			return nil, errors.New("store: truncated section name")
		}
		s := Section{Name: string(rest[:nameLen])}
		rest = rest[nameLen:]
		dataLen := binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		if uint64(len(rest)) < dataLen {
			return nil, errors.New("store: truncated section data")
		}
		s.Data = append([]byte(nil), rest[:dataLen]...)
		rest = rest[dataLen:]
		sections = append(sections, s)
	}
	return sections, nil
}

// DependencyResolver is optionally implemented by backends whose stored
// objects depend on other keys for reconstruction (the incremental
// decorator's delta chains). Dependencies returns every key that must
// remain in the store for Get(key) to keep succeeding, key itself
// included. Decorators that merely forward Get (Async, the reliability
// levels) forward this too; for self-contained backends every key
// depends only on itself.
type DependencyResolver interface {
	Dependencies(key string) ([]string, error)
}

// DependenciesOf reports the keys Get(key) depends on through b's
// decorator chain, falling back to {key} for self-contained backends.
// The retention policy of checkpoint.Context uses it to avoid deleting a
// keyframe (or an intermediate delta) still referenced by a retained
// delta chain.
func DependenciesOf(b Backend, key string) ([]string, error) {
	if r, ok := b.(DependencyResolver); ok {
		return r.Dependencies(key)
	}
	return []string{key}, nil
}

// NamespaceForDir derives a remote-service namespace from a scratch
// directory path, so code that points each logical store at its own
// directory (the validation harness's per-scenario dirs, the
// many-clients scenario's per-client dirs) gets disjoint key spaces on a
// shared service without knowing about namespaces. The result is the
// sanitized path tail plus a hash of the full path, and is stable for a
// given path.
func NamespaceForDir(dir string) string {
	if dir == "" {
		return "default"
	}
	sum := crc32.ChecksumIEEE([]byte(dir))
	tail := dir
	if len(tail) > 40 {
		tail = tail[len(tail)-40:]
	}
	buf := make([]byte, 0, len(tail)+9)
	for i := 0; i < len(tail); i++ {
		c := tail[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			buf = append(buf, c)
		default:
			buf = append(buf, '-')
		}
	}
	return fmt.Sprintf("%s-%08x", buf, sum)
}

// copySections deep-copies sections (decorator staging buffers must not
// alias caller memory).
func copySections(sections []Section) []Section {
	out := make([]Section, len(sections))
	for i, s := range sections {
		out[i] = Section{Name: s.Name, Data: append([]byte(nil), s.Data...)}
	}
	return out
}

// Package obs is the telemetry substrate for the repo: atomic counters
// and gauges, fixed-bucket latency histograms with quantile snapshots,
// and lightweight spans with a pluggable sink. It is dependency-free and
// allocation-conscious by design — every method on every type is safe on
// a nil receiver and does nothing, exactly like faultinject, so a layer
// whose telemetry is disabled pays one nil check per operation and zero
// allocations. Enabling observation is a matter of threading a *Registry
// through a Config; nothing else changes.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically named (not enforced) atomic int64. A nil
// Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic level (in-flight requests, queue
// depth). A nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc raises the level by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a process-local namespace of named instruments. Instruments
// are created on first use and live for the registry's lifetime, so hot
// paths resolve them once at wiring time and then touch only atomics. All
// methods are safe on a nil *Registry: lookups return nil instruments,
// whose methods are no-ops — the disabled-telemetry configuration is a
// nil Registry threaded everywhere.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	sink atomic.Value // holds sinkBox
}

// sinkBox wraps Sink so atomic.Value tolerates differing concrete types.
type sinkBox struct{ s Sink }

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = new(Counter)
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = new(Gauge)
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = new(Histogram)
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every instrument, shaped for JSON
// (the server's /v1/metrics payload) and for programmatic reads (doctor,
// bench). Maps are fully materialized copies; mutating them is safe.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument. Concurrent recording is fine: each
// instrument is read atomically, so the snapshot is per-instrument
// consistent (no torn histogram) though not globally instantaneous.
// Returns a zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Names returns the sorted instrument names of each kind — stable
// ordering for reports and tests.
func (s Snapshot) Names() (counters, gauges, histograms []string) {
	for n := range s.Counters {
		counters = append(counters, n)
	}
	for n := range s.Gauges {
		gauges = append(gauges, n)
	}
	for n := range s.Histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return
}

// Op bundles the instruments of one named operation — a latency
// histogram, a byte counter, and lazily-created error-class counters —
// so an instrumented call site is two calls: start := op.Start() before
// the work, op.Done(start, n, class) after. A nil *Op (from a nil
// registry) makes both no-ops; Start on a nil Op does not even read the
// clock.
type Op struct {
	reg   *Registry
	name  string
	lat   *Histogram
	bytes *Counter
}

// Op returns the recorder for one named operation. The latency histogram
// is registered as "<name>.ns" and the byte counter as "<name>.bytes";
// errors land in counters named "<name>.err.<class>". Returns nil on a
// nil registry.
func (r *Registry) Op(name string) *Op {
	if r == nil {
		return nil
	}
	return &Op{
		reg:   r,
		name:  name,
		lat:   r.Histogram(name + ".ns"),
		bytes: r.Counter(name + ".bytes"),
	}
}

// Start reads the clock for a subsequent Done. On a nil Op it returns the
// zero time without touching the clock.
func (o *Op) Start() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// Done records one completed operation: latency since start, n payload
// bytes (skipped when <= 0), and an error-class counter bump when class
// is non-empty.
func (o *Op) Done(start time.Time, n int64, class string) {
	if o == nil {
		return
	}
	o.lat.Observe(time.Since(start))
	if n > 0 {
		o.bytes.Add(n)
	}
	if class != "" {
		o.reg.Counter(o.name + ".err." + class).Inc()
	}
}

// SpanEvent is one finished span as delivered to a Sink.
type SpanEvent struct {
	Name     string
	Detail   string
	Start    time.Time
	Duration time.Duration
	Err      string
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use; they run inline on the recording goroutine, so they
// should be fast (buffer, don't block).
type Sink interface {
	Span(SpanEvent)
}

// SetSink installs (or, with nil, removes) the span sink. Safe on a nil
// registry.
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink.Store(sinkBox{s})
}

func (r *Registry) loadSink() Sink {
	if r == nil {
		return nil
	}
	if b, ok := r.sink.Load().(sinkBox); ok {
		return b.s
	}
	return nil
}

// Span is a lightweight in-progress trace span, held by value so starting
// one allocates nothing. A Span from a nil registry — or from a registry
// with no sink installed — is inactive: End is a no-op, and Active lets
// call sites skip building detail strings entirely.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins a span. When the registry is nil or has no sink the
// returned span is inactive and the clock is not read: spans cost nothing
// unless someone is listening.
func (r *Registry) StartSpan(name string) Span {
	if r == nil || r.loadSink() == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// Active reports whether End will emit. Call sites use it to avoid
// formatting detail strings for spans nobody receives.
func (sp Span) Active() bool { return sp.reg != nil }

// End finishes the span and delivers it to the sink installed when the
// span started (or the current one if it changed since). errText is the
// error rendering, empty for success; detail is free-form call-site
// context.
func (sp Span) End(detail, errText string) {
	if sp.reg == nil {
		return
	}
	s := sp.reg.loadSink()
	if s == nil {
		return
	}
	s.Span(SpanEvent{
		Name:     sp.name,
		Detail:   detail,
		Start:    sp.start,
		Duration: time.Since(sp.start),
		Err:      errText,
	})
}

// BufferSink is a bounded in-memory Sink for tests and interactive
// tooling. Once cap spans are held, further spans are counted but
// dropped.
type BufferSink struct {
	mu      sync.Mutex
	cap     int
	events  []SpanEvent
	dropped int64
}

// NewBufferSink returns a sink retaining up to capacity spans
// (<= 0 selects 1024).
func NewBufferSink(capacity int) *BufferSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &BufferSink{cap: capacity}
}

// Span implements Sink.
func (b *BufferSink) Span(e SpanEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) >= b.cap {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Events returns a copy of the retained spans in arrival order.
func (b *BufferSink) Events() []SpanEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]SpanEvent, len(b.events))
	copy(out, b.events)
	return out
}

// Dropped reports how many spans arrived after the buffer filled.
func (b *BufferSink) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter did not return the same instrument on re-lookup")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Millisecond)
	r.Op("x").Done(r.Op("x").Start(), 10, "io")
	r.SetSink(NewBufferSink(1))
	sp := r.StartSpan("x")
	if sp.Active() {
		t.Fatal("span from nil registry should be inactive")
	}
	sp.End("detail", "err")
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1023, 9}, {1024, 10}, {1 << 39, 39}, {1 << 45, 39},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if BucketLower(10) != 1024 {
		t.Fatalf("BucketLower(10) = %d, want 1024", BucketLower(10))
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1us, 10 at ~1ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d, want 111", s.Count)
	}
	if s.MaxNs != int64(time.Second) {
		t.Fatalf("max = %d, want 1s", s.MaxNs)
	}
	// Buckets are power-of-two wide, so each quantile must land within 2x
	// of the true value.
	within2x := func(got, want int64) bool { return got >= want/2 && got <= 2*want }
	if !within2x(s.P50Ns, int64(time.Microsecond)) {
		t.Errorf("p50 = %dns, want ~1us", s.P50Ns)
	}
	if !within2x(s.P95Ns, int64(time.Millisecond)) {
		t.Errorf("p95 = %dns, want ~1ms (rank 105 of 111 falls past the 100 1us obs)", s.P95Ns)
	}
	if !within2x(s.P99Ns, int64(time.Millisecond)) {
		t.Errorf("p99 = %dns, want ~1ms", s.P99Ns)
	}
	if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", s.P50Ns, s.P95Ns, s.P99Ns)
	}
	if got := s.Mean(); got <= 0 {
		t.Errorf("mean = %d, want > 0", got)
	}
}

// TestSnapshotDuringRecord hammers one histogram from writers while a
// reader snapshots continuously: every snapshot must be internally
// consistent (count equals the bucket mass its quantiles were computed
// from, quantiles monotone, count monotone across snapshots).
func TestSnapshotDuringRecord(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration((seed+int64(i))%5000) * time.Microsecond)
			}
		}(int64(w) * 13)
	}
	var lastCount int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			s := h.Snapshot()
			if s.Count < lastCount {
				t.Errorf("count went backwards: %d -> %d", lastCount, s.Count)
				return
			}
			lastCount = s.Count
			if s.Count > 0 && (s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns) {
				t.Errorf("quantiles not monotone under load: %+v", s)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perWriter)
	}
}

// TestRegistryConcurrency exercises creation and recording from many
// goroutines (meaningful under -race).
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			names := []string{"a", "b", "c"}
			for i := 0; i < 2000; i++ {
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n).Add(1)
				r.Histogram(n).Observe(time.Duration(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	for _, n := range []string{"a", "b", "c"} {
		if s.Histograms[n].Count == 0 {
			t.Fatalf("histogram %q empty after concurrent load", n)
		}
	}
	want := int64(8 * 2000 / 3)
	total := s.Counters["a"] + s.Counters["b"] + s.Counters["c"]
	if total != 8*2000 {
		t.Fatalf("counter mass = %d, want %d (per-name ~%d)", total, 8*2000, want)
	}
}

// TestDisabledTelemetryZeroAllocs pins the no-op path at 0 allocs/op:
// a nil registry's instruments, ops, and spans must be free on hot paths.
func TestDisabledTelemetryZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	op := r.Op("op")
	if allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Inc()
		h.Observe(time.Millisecond)
		start := op.Start()
		op.Done(start, 100, "")
		sp := r.StartSpan("s")
		sp.End("", "")
	}); allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledRecordingZeroAllocs pins the *enabled* steady-state too:
// once instruments are resolved, recording is pure atomics.
func TestEnabledRecordingZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	op := r.Op("op")
	if allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(time.Millisecond)
		op.Done(op.Start(), 64, "")
	}); allocs != 0 {
		t.Fatalf("enabled steady-state recording allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestOpErrorClasses(t *testing.T) {
	r := New()
	op := r.Op("store.x.get")
	op.Done(op.Start(), 0, "not_found")
	op.Done(op.Start(), 128, "")
	s := r.Snapshot()
	if got := s.Counters["store.x.get.err.not_found"]; got != 1 {
		t.Fatalf("err counter = %d, want 1", got)
	}
	if got := s.Counters["store.x.get.bytes"]; got != 128 {
		t.Fatalf("bytes = %d, want 128", got)
	}
	if got := s.Histograms["store.x.get.ns"].Count; got != 2 {
		t.Fatalf("latency count = %d, want 2", got)
	}
}

func TestSpansAndSink(t *testing.T) {
	r := New()
	// No sink installed: spans are inactive.
	if sp := r.StartSpan("quiet"); sp.Active() {
		t.Fatal("span should be inactive with no sink")
	}
	sink := NewBufferSink(2)
	r.SetSink(sink)
	sp := r.StartSpan("attempt")
	if !sp.Active() {
		t.Fatal("span should be active with sink installed")
	}
	sp.End("try=1", "timeout")
	r.StartSpan("attempt").End("try=2", "")
	r.StartSpan("attempt").End("try=3", "") // over capacity: dropped
	ev := sink.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Name != "attempt" || ev[0].Detail != "try=1" || ev[0].Err != "timeout" {
		t.Fatalf("bad first event: %+v", ev[0])
	}
	if ev[0].Duration < 0 {
		t.Fatalf("negative duration: %v", ev[0].Duration)
	}
	if sink.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sink.Dropped())
	}
	// Removing the sink deactivates new spans.
	r.SetSink(nil)
	if sp := r.StartSpan("quiet"); sp.Active() {
		t.Fatal("span should be inactive after sink removed")
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := New()
	r.Counter("server.shed").Add(3)
	r.Gauge("server.inflight").Set(2)
	r.Histogram("server.put.ns").Observe(time.Millisecond)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["server.shed"] != 3 || back.Gauges["server.inflight"] != 2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.Histograms["server.put.ns"].Count != 1 {
		t.Fatalf("histogram lost in round-trip: %+v", back)
	}
	cs, gs, hs := back.Names()
	if len(cs) != 1 || len(gs) != 1 || len(hs) != 1 {
		t.Fatalf("Names() = %v %v %v", cs, gs, hs)
	}
}

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers [1ns, ~18min) in power-of-two buckets: bucket i holds
// observations in [2^i, 2^(i+1)) nanoseconds, with bucket 0 also catching
// <= 1ns and the last bucket catching everything above 2^39ns (~9.2min).
// Power-of-two bounds make the bucket index a single bits.Len64 — no
// search, no float math — at the cost of quantiles being ~2x-resolution
// estimates, which is plenty for p50/p95/p99 of I/O and sweep latencies.
const numBuckets = 40

// Histogram is a fixed-bucket latency histogram recording durations in
// nanoseconds. Recording is three atomic adds plus a CAS-maintained max;
// there is no locking and no allocation. A nil Histogram is a no-op.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// BucketLower returns the inclusive lower bound of bucket i in
// nanoseconds (exported for the DESIGN.md catalog and tests).
func BucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// HistogramSnapshot is a point-in-time digest: count, sum, observed max,
// and interpolated quantiles, all in nanoseconds.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}

// Snapshot digests the histogram. Count is derived from the bucket counts
// read in one pass, so the quantiles are always consistent with it even
// while other goroutines record; sum and max are read independently and
// may run slightly ahead or behind the buckets. A nil histogram yields a
// zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [numBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	if s.Count == 0 {
		return s
	}
	s.P50Ns = quantile(&counts, s.Count, 0.50)
	s.P95Ns = quantile(&counts, s.Count, 0.95)
	s.P99Ns = quantile(&counts, s.Count, 0.99)
	return s
}

// quantile estimates the q-quantile by walking cumulative bucket counts
// and interpolating linearly inside the bucket containing the target
// rank. The estimate is bounded by the bucket's [2^i, 2^(i+1)) range, so
// it is within 2x of the true value by construction.
func quantile(counts *[numBuckets]int64, total int64, q float64) int64 {
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		if cum+counts[i] < rank {
			cum += counts[i]
			continue
		}
		lo := BucketLower(i)
		hi := int64(1) << uint(i+1)
		frac := float64(rank-cum) / float64(counts[i])
		return lo + int64(frac*float64(hi-lo))
	}
	return 0
}

// Package cfg implements control-flow analyses over the IR: predecessor /
// successor maps, reverse postorder, dominator trees, natural-loop
// detection with nesting, and induction-variable identification.
//
// This is the reproduction's stand-in for the paper's "llvm-pass-loop API"
// (§IV-C "Index"): AutoCheck uses it to find the outermost loop covering
// the main computation loop range and to identify its induction variable,
// which is always checkpointed.
package cfg

import (
	"sort"

	"autocheck/internal/ir"
	"autocheck/internal/trace"
)

// Graph holds the control-flow structure of one function.
type Graph struct {
	Fn     *ir.Function
	Blocks []*ir.Block       // reverse postorder
	Index  map[*ir.Block]int // block -> RPO index
	Preds  map[*ir.Block][]*ir.Block
	Succs  map[*ir.Block][]*ir.Block
	idom   map[*ir.Block]*ir.Block
}

// New computes the CFG and dominator tree of f. Unreachable blocks are
// excluded from Blocks (they cannot execute, so they never appear in a
// dynamic trace either).
func New(f *ir.Function) *Graph {
	g := &Graph{
		Fn:    f,
		Index: make(map[*ir.Block]int),
		Preds: make(map[*ir.Block][]*ir.Block),
		Succs: make(map[*ir.Block][]*ir.Block),
		idom:  make(map[*ir.Block]*ir.Block),
	}
	if f.Entry() == nil {
		return g
	}
	// Depth-first postorder, then reverse.
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			g.Succs[b] = append(g.Succs[b], s)
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i := len(post) - 1; i >= 0; i-- {
		g.Index[post[i]] = len(g.Blocks)
		g.Blocks = append(g.Blocks, post[i])
	}
	for _, b := range g.Blocks {
		for _, s := range g.Succs[b] {
			g.Preds[s] = append(g.Preds[s], b)
		}
	}
	g.computeDominators()
	return g
}

// computeDominators uses the Cooper-Harvey-Kennedy iterative algorithm on
// reverse postorder.
func (g *Graph) computeDominators() {
	if len(g.Blocks) == 0 {
		return
	}
	entry := g.Blocks[0]
	g.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks[1:] {
			var newIdom *ir.Block
			for _, p := range g.Preds[b] {
				if g.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for g.Index[a] > g.Index[b] {
			a = g.idom[a]
		}
		for g.Index[b] > g.Index[a] {
			b = g.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (entry dominates itself).
func (g *Graph) IDom(b *ir.Block) *ir.Block { return g.idom[b] }

// Dominates reports whether a dominates b.
func (g *Graph) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := g.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop.
type Loop struct {
	Header  *ir.Block
	Blocks  map[*ir.Block]bool
	Latches []*ir.Block // blocks with a back edge to Header
	Parent  *Loop
	Childs  []*Loop
	Depth   int // 1 = outermost
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// LineRange returns the minimum and maximum source line of instructions in
// the loop body (ignoring synthesized line -1 instructions).
func (l *Loop) LineRange() (lo, hi int) {
	lo, hi = -1, -1
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Line < 0 {
				continue
			}
			if lo < 0 || in.Line < lo {
				lo = in.Line
			}
			if in.Line > hi {
				hi = in.Line
			}
		}
	}
	return lo, hi
}

// Loops finds all natural loops of g, with nesting links. The result is
// sorted outermost-first (by depth, then header RPO index), which is a
// deterministic order for tests and reports.
func (g *Graph) Loops() []*Loop {
	byHeader := make(map[*ir.Block]*Loop)
	var loops []*Loop
	for _, n := range g.Blocks {
		for _, h := range g.Succs[n] {
			if !g.Dominates(h, n) {
				continue // not a back edge
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}}
				byHeader[h] = l
				loops = append(loops, l)
			}
			l.Latches = append(l.Latches, n)
			// Collect the loop body: all nodes that reach n without
			// passing through h.
			stack := []*ir.Block{n}
			for len(stack) > 0 {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[m] {
					continue
				}
				l.Blocks[m] = true
				for _, p := range g.Preds[m] {
					if p != h {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Nesting: loop A is a child of the smallest loop B != A whose body
	// contains A's header.
	for _, a := range loops {
		var best *Loop
		for _, b := range loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			if best == nil || len(b.Blocks) < len(best.Blocks) {
				best = b
			}
		}
		if best != nil {
			a.Parent = best
			best.Childs = append(best.Childs, a)
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth < loops[j].Depth
		}
		return g.Index[loops[i].Header] < g.Index[loops[j].Header]
	})
	return loops
}

// OutermostLoopInRange returns the outermost loop whose body's source-line
// range lies within [startLine, endLine], preferring the largest body.
// This is how AutoCheck maps the user-provided MCLR (main computation loop
// range) to an IR loop.
func (g *Graph) OutermostLoopInRange(startLine, endLine int) *Loop {
	var best *Loop
	for _, l := range g.Loops() {
		lo, hi := l.LineRange()
		if lo < 0 || lo < startLine || hi > endLine {
			continue
		}
		if l.Parent != nil {
			plo, phi := l.Parent.LineRange()
			if plo >= startLine && phi <= endLine {
				continue // parent also fits; prefer the parent
			}
		}
		if best == nil || len(l.Blocks) > len(best.Blocks) {
			best = l
		}
	}
	return best
}

// InductionVariable identifies the canonical induction variable of a loop:
// a named alloca v such that (1) the loop header's exit condition compares
// a load of v, and (2) some block of the loop stores v := (load v) ± c.
// It returns the defining alloca instruction, or nil.
func (g *Graph) InductionVariable(l *Loop) *ir.Instr {
	if l == nil {
		return nil
	}
	// Candidate slots loaded in the header and feeding the header compare.
	cands := make(map[*ir.Instr]bool)
	for _, in := range l.Header.Instrs {
		if in.Op != trace.OpICmp && in.Op != trace.OpFCmp {
			continue
		}
		for _, a := range in.Args {
			ld, ok := a.(*ir.Instr)
			if !ok || ld.Op != trace.OpLoad {
				continue
			}
			if slot := allocaOf(ld.Args[0]); slot != nil {
				cands[slot] = true
			}
		}
	}
	// A candidate must be updated as v = v ± c somewhere in the loop.
	var found *ir.Instr
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op != trace.OpStore {
				continue
			}
			slot := allocaOf(in.Args[1])
			if slot == nil || !cands[slot] {
				continue
			}
			add, ok := in.Args[0].(*ir.Instr)
			if !ok || (add.Op != trace.OpAdd && add.Op != trace.OpSub) {
				continue
			}
			if loadsSlot(add.Args[0], slot) || loadsSlot(add.Args[1], slot) {
				if found == nil || g.Index[b] < g.Index[found.Parent] {
					found = slot
				}
			}
		}
	}
	return found
}

// allocaOf unwraps a pointer value to its defining named alloca, if any.
func allocaOf(v ir.Value) *ir.Instr {
	in, ok := v.(*ir.Instr)
	if !ok {
		return nil
	}
	switch in.Op {
	case trace.OpAlloca:
		if in.Name != "" {
			return in
		}
		return nil
	case trace.OpBitCast, trace.OpGetElementPtr:
		return allocaOf(in.Args[0])
	}
	return nil
}

func loadsSlot(v ir.Value, slot *ir.Instr) bool {
	ld, ok := v.(*ir.Instr)
	return ok && ld.Op == trace.OpLoad && allocaOf(ld.Args[0]) == slot
}

package cfg

import (
	"testing"

	"autocheck/internal/ir"
	"autocheck/internal/trace"
)

// buildNestedLoops constructs the IR equivalent of:
//
//	func f(n) {            // line
//	  i = 0                // 2
//	  for i < n {          // 3 (header outer)
//	    j = 0              // 4
//	    for j < n {        // 5 (header inner)
//	      j = j + 1        // 6
//	    }
//	    i = i + 1          // 7
//	  }
//	}
func buildNestedLoops(t *testing.T) (*ir.Function, *Graph) {
	t.Helper()
	f := ir.NewFunction("f", ir.Void, &ir.Param{Name: "n", Typ: ir.I64})
	b := ir.NewBuilder(f)
	nSlot := b.Alloca("n", ir.I64, -1)
	iSlot := b.Alloca("i", ir.I64, 2)
	jSlot := b.Alloca("j", ir.I64, 4)
	b.Store(&ir.Param{Name: "n", Typ: ir.I64}, nSlot, -1)
	b.Store(ir.ConstInt(0), iSlot, 2)
	outerCond := f.NewBlock("outer.cond")
	outerBody := f.NewBlock("outer.body")
	innerCond := f.NewBlock("inner.cond")
	innerBody := f.NewBlock("inner.body")
	outerLatch := f.NewBlock("outer.latch")
	exit := f.NewBlock("exit")
	b.Br(outerCond, 3)

	b.SetBlock(outerCond)
	iv := b.Load(iSlot, 3)
	nv := b.Load(nSlot, 3)
	c := b.Cmp(ir.CmpLT, iv, nv, 3)
	b.CondBr(c, outerBody, exit, 3)

	b.SetBlock(outerBody)
	b.Store(ir.ConstInt(0), jSlot, 4)
	b.Br(innerCond, 5)

	b.SetBlock(innerCond)
	jv := b.Load(jSlot, 5)
	nv2 := b.Load(nSlot, 5)
	c2 := b.Cmp(ir.CmpLT, jv, nv2, 5)
	b.CondBr(c2, innerBody, outerLatch, 5)

	b.SetBlock(innerBody)
	jv2 := b.Load(jSlot, 6)
	jinc := b.Bin(trace.OpAdd, jv2, ir.ConstInt(1), 6)
	b.Store(jinc, jSlot, 6)
	b.Br(innerCond, 6)

	b.SetBlock(outerLatch)
	iv2 := b.Load(iSlot, 7)
	iinc := b.Bin(trace.OpAdd, iv2, ir.ConstInt(1), 7)
	b.Store(iinc, iSlot, 7)
	b.Br(outerCond, 7)

	b.SetBlock(exit)
	b.Ret(nil, 8)

	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f, New(f)
}

func TestRPOStartsAtEntry(t *testing.T) {
	f, g := buildNestedLoops(t)
	if len(g.Blocks) != len(f.Blocks) {
		t.Fatalf("RPO has %d blocks, function has %d", len(g.Blocks), len(f.Blocks))
	}
	if g.Blocks[0] != f.Entry() {
		t.Error("RPO does not start at entry")
	}
	// Every edge u->v with v not a loop header must satisfy rpo(u) < rpo(v).
	for _, b := range g.Blocks {
		for _, s := range g.Succs[b] {
			if g.Index[s] <= g.Index[b] && !g.Dominates(s, b) {
				t.Errorf("non-back edge %s->%s violates RPO", b.Name, s.Name)
			}
		}
	}
}

func TestPredsSuccsConsistent(t *testing.T) {
	_, g := buildNestedLoops(t)
	for _, b := range g.Blocks {
		for _, s := range g.Succs[b] {
			found := false
			for _, p := range g.Preds[s] {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %s->%s missing from preds", b.Name, s.Name)
			}
		}
	}
}

func TestDominators(t *testing.T) {
	f, g := buildNestedLoops(t)
	entry := f.Entry()
	for _, b := range g.Blocks {
		if !g.Dominates(entry, b) {
			t.Errorf("entry does not dominate %s", b.Name)
		}
	}
	outerCond := f.Blocks[1]
	innerCond := f.Blocks[3]
	if !g.Dominates(outerCond, innerCond) {
		t.Error("outer.cond should dominate inner.cond")
	}
	if g.Dominates(innerCond, outerCond) {
		t.Error("inner.cond should not dominate outer.cond")
	}
}

func TestLoopDetection(t *testing.T) {
	f, g := buildNestedLoops(t)
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", outer.Depth, inner.Depth)
	}
	if outer.Header != f.Blocks[1] {
		t.Errorf("outer header = %s", outer.Header.Name)
	}
	if inner.Header != f.Blocks[3] {
		t.Errorf("inner header = %s", inner.Header.Name)
	}
	if inner.Parent != outer {
		t.Error("inner loop not nested in outer")
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop body must contain inner header")
	}
	if outer.Contains(f.Blocks[6]) {
		t.Error("outer loop must not contain exit block")
	}
}

func TestLoopLineRange(t *testing.T) {
	_, g := buildNestedLoops(t)
	loops := g.Loops()
	lo, hi := loops[0].LineRange()
	if lo != 3 || hi != 7 {
		t.Errorf("outer line range = [%d,%d], want [3,7]", lo, hi)
	}
	lo, hi = loops[1].LineRange()
	if lo != 5 || hi != 6 {
		t.Errorf("inner line range = [%d,%d], want [5,6]", lo, hi)
	}
}

func TestOutermostLoopInRange(t *testing.T) {
	_, g := buildNestedLoops(t)
	l := g.OutermostLoopInRange(3, 7)
	if l == nil || l.Depth != 1 {
		t.Fatalf("OutermostLoopInRange(3,7) = %+v, want outer loop", l)
	}
	l = g.OutermostLoopInRange(5, 6)
	if l == nil || l.Depth != 2 {
		t.Fatalf("OutermostLoopInRange(5,6) should find the inner loop, got %+v", l)
	}
	if g.OutermostLoopInRange(100, 200) != nil {
		t.Error("range with no loops should return nil")
	}
}

func TestInductionVariable(t *testing.T) {
	_, g := buildNestedLoops(t)
	loops := g.Loops()
	iv := g.InductionVariable(loops[0])
	if iv == nil || iv.Name != "i" {
		t.Fatalf("outer induction variable = %v, want i", iv)
	}
	iv = g.InductionVariable(loops[1])
	if iv == nil || iv.Name != "j" {
		t.Fatalf("inner induction variable = %v, want j", iv)
	}
	if g.InductionVariable(nil) != nil {
		t.Error("InductionVariable(nil) should be nil")
	}
}

func TestStraightLineNoLoops(t *testing.T) {
	f := ir.NewFunction("g", ir.Void)
	b := ir.NewBuilder(f)
	b.Alloca("x", ir.I64, 1)
	b.Ret(nil, 2)
	g := New(f)
	if len(g.Loops()) != 0 {
		t.Error("straight-line code should have no loops")
	}
	if g.IDom(f.Entry()) != f.Entry() {
		t.Error("entry must be its own idom")
	}
}

func TestUnreachableBlockExcluded(t *testing.T) {
	f := ir.NewFunction("g", ir.Void)
	b := ir.NewBuilder(f)
	b.Ret(nil, 1)
	dead := f.NewBlock("dead")
	b.SetBlock(dead)
	b.Ret(nil, 2)
	g := New(f)
	if len(g.Blocks) != 1 {
		t.Errorf("CFG has %d blocks, want 1 (unreachable excluded)", len(g.Blocks))
	}
}

// Diamond CFG: entry -> a, b -> join. Join's idom must be entry.
func TestDominatorsDiamond(t *testing.T) {
	f := ir.NewFunction("g", ir.Void)
	b := ir.NewBuilder(f)
	x := b.Alloca("x", ir.I64, 1)
	cond := b.Load(x, 1)
	ta := f.NewBlock("a")
	tb := f.NewBlock("b")
	join := f.NewBlock("join")
	b.CondBr(cond, ta, tb, 1)
	b.SetBlock(ta)
	b.Br(join, 2)
	b.SetBlock(tb)
	b.Br(join, 3)
	b.SetBlock(join)
	b.Ret(nil, 4)
	g := New(f)
	if g.IDom(join) != f.Entry() {
		t.Errorf("idom(join) = %s, want entry", g.IDom(join).Name)
	}
	if g.Dominates(ta, join) {
		t.Error("a should not dominate join")
	}
}

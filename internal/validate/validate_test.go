package validate

import (
	"context"
	"net/http/httptest"
	"testing"

	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

const fig4Source = `
void foo(int *p, int *q) {
  for (int i = 0; i < 10; ++i) {
    q[i] = p[i] * 2;
  }
}
int main() {
  int a[10];
  int b[10];
  int sum = 0;
  int s = 0;
  int r = 1;
  for (int i = 0; i < 10; ++i) {
    a[i] = 0;
    b[i] = 0;
  }
  for (int it = 0; it < 10; ++it) {
    int m;
    s = it + 1;
    a[it] = s * r;
    foo(a, b);
    r++;
    m = a[it] + b[it];
    sum = m;
  }
  print(sum);
  return 0;
}`

func analyzed(t *testing.T, src string, spec core.LoopSpec) (*ir.Module, *core.Result) {
	t.Helper()
	mod, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := interp.TraceProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Module = mod
	res, err := core.Analyze(recs, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return mod, res
}

// TestFig4Validation reproduces §VI-B on the example code: with the
// AutoCheck-detected variables (r, a, sum, it) checkpointed, every restart
// matches the failure-free run, and no detected variable is a false
// positive.
func TestFig4Validation(t *testing.T) {
	mod, res := analyzed(t, fig4Source, core.LoopSpec{Function: "main", StartLine: 17, EndLine: 25})
	v, err := New(mod, res, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 10 {
		t.Errorf("Iterations = %d, want 10", rep.Iterations)
	}
	if !rep.Sufficient {
		t.Errorf("restart with detected variables failed: %s", rep.Mismatch)
	}
	for _, c := range res.Critical {
		if !rep.Necessary[c.Name] {
			t.Errorf("variable %s (%s) reported unnecessary (false positive)", c.Name, c.Type)
		}
	}
	if rep.CheckpointBytes <= 0 {
		t.Error("checkpoint size not measured")
	}
	if rep.FullSnapshotBytes <= rep.CheckpointBytes {
		t.Errorf("full snapshot (%d B) should exceed AutoCheck checkpoint (%d B)",
			rep.FullSnapshotBytes, rep.CheckpointBytes)
	}
}

// TestInsufficientSetDetected: dropping a WAR variable from the protected
// set must be caught as insufficient.
func TestInsufficientSetDetected(t *testing.T) {
	mod, res := analyzed(t, fig4Source, core.LoopSpec{Function: "main", StartLine: 17, EndLine: 25})
	// Remove 'r' (WAR) from the critical set before validating.
	var pruned []core.CriticalVar
	for _, c := range res.Critical {
		if c.Name != "r" {
			pruned = append(pruned, c)
		}
	}
	res.Critical = pruned
	v, err := New(mod, res, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sufficient {
		t.Error("restart without the WAR variable r should not match the reference")
	}
}

// A float stencil with an Outcome variable and a RAPO array, exercising
// the checkpoint of float cells.
const stencilSource = `
int main() {
  float u[16];
  float unew[16];
  float resid = 0.0;
  for (int i = 0; i < 16; i++) {
    u[i] = i * i;
    unew[i] = 0.0;
  }
  for (int step = 0; step < 8; step++) {
    for (int i = 1; i < 15; i++) {
      unew[i] = (u[i-1] + u[i+1]) / 2.0;
    }
    resid = 0.0;
    for (int i = 1; i < 15; i++) {
      float d = unew[i] - u[i];
      resid += d * d;
      u[i] = unew[i];
    }
  }
  print(resid, u[7]);
  return 0;
}`

func TestStencilValidation(t *testing.T) {
	mod, res := analyzed(t, stencilSource, core.LoopSpec{Function: "main", StartLine: 10, EndLine: 19})
	if res.Find("u") == nil {
		t.Fatalf("u should be critical; got %v", res.CriticalNames())
	}
	v, err := New(mod, res, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sufficient {
		t.Errorf("stencil restart failed: %s", rep.Mismatch)
	}
	if !rep.Necessary["u"] {
		t.Error("u should be necessary")
	}
}

// The §VI-B protocol must hold unchanged across every storage backend
// and write-path decorator — network and cache tiers included: same
// sufficiency, same necessity verdicts. The remote cases run against a
// live checkpoint service (httptest); each failure scenario's scratch
// dir maps to its own service namespace, so scenarios stay disjoint the
// same way they do on disk.
func TestFig4ValidationAcrossStoreBackends(t *testing.T) {
	mod, res := analyzed(t, fig4Source, core.LoopSpec{Function: "main", StartLine: 17, EndLine: 25})
	svc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	for name, opts := range map[string]Options{
		"memory":           {Store: store.Config{Kind: store.KindMemory}},
		"sharded":          {Store: store.Config{Kind: store.KindSharded, Workers: 2}},
		"file-async":       {Store: store.Config{Kind: store.KindFile, Async: true}},
		"file-incremental": {Store: store.Config{Kind: store.KindFile, Incremental: true, Keyframe: 4}},
		"sharded-async-incremental-L2": {
			Level: checkpoint.L2,
			Store: store.Config{Kind: store.KindSharded, Workers: 2, Async: true, Incremental: true, Keyframe: 4},
		},
		"file-cached": {Store: store.Config{Kind: store.KindFile, CacheMB: 4}},
		"remote":      {Store: store.Config{Kind: store.KindRemote, Addr: ts.URL}},
		"remote-cached-incremental": {
			Store: store.Config{Kind: store.KindRemote, Addr: ts.URL, CacheMB: 4, Incremental: true, Keyframe: 4},
		},
		"remote-L2": {
			Level: checkpoint.L2,
			Store: store.Config{Kind: store.KindRemote, Addr: ts.URL, CacheMB: 2},
		},
	} {
		t.Run(name, func(t *testing.T) {
			v, err := NewWithOptions(mod, res, t.TempDir(), opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := v.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sufficient {
				t.Errorf("restart failed: %s", rep.Mismatch)
			}
			for _, c := range res.Critical {
				if !rep.Necessary[c.Name] {
					t.Errorf("variable %s reported unnecessary", c.Name)
				}
			}
			if rep.StoreBytes <= 0 {
				t.Error("backend byte accounting missing")
			}
			// No byte-reduction assertion here: fig4's critical variables
			// all change every iteration, so deltas degenerate to full
			// sections plus framing. The reduction claim is benchmarked on
			// programs with stable sections (harness.MeasureStorageRun on
			// IS, and TestIncrementalWritesFewerBytes in internal/store).
		})
	}
}

func TestValidatorErrors(t *testing.T) {
	mod, res := analyzed(t, fig4Source, core.LoopSpec{Function: "main", StartLine: 17, EndLine: 25})
	// Wrong function.
	bad := *res
	bad.Spec.Function = "nosuch"
	if _, err := New(mod, &bad, t.TempDir()); err == nil {
		t.Error("New with bad function should fail")
	}
	// No loop in range.
	bad2 := *res
	bad2.Spec.StartLine, bad2.Spec.EndLine = 2, 3
	if _, err := New(mod, &bad2, t.TempDir()); err == nil {
		t.Error("New with no loop in range should fail")
	}
}

// Package validate reproduces the paper's §VI-B validation protocol: add
// C/R code for the AutoCheck-detected variables (via the FTI-like
// checkpoint substrate), raise a fail-stop failure inside the main
// computation loop, restart from the latest checkpoint, and check that the
// restarted execution matches a failure-free execution. It also runs the
// false-positive check: dropping each detected variable from the protected
// set one at a time must break at least one restart scenario.
//
// One strengthening over the paper: besides comparing printed output, the
// harness compares the final memory state of the checkpointed variables.
// The paper's benchmarks print verification values that summarize that
// state; comparing it directly keeps small kernels honest even when their
// printed output happens to be recomputable.
package validate

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"

	"autocheck/internal/cfg"
	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// Options selects how validation checkpoints are persisted. The zero
// value reproduces the paper's setup: L1 checkpoints through the plain
// file backend.
type Options struct {
	Level checkpoint.Level // 0 means L1
	Store store.Config     // Dir is overridden per failure scenario
}

// Report is the outcome of a validation run.
type Report struct {
	Iterations        int64 // main-loop iterations in a failure-free run
	FailPoints        []int64
	Sufficient        bool            // all restarts matched the reference
	Necessary         map[string]bool // variable -> dropping it broke a restart
	CheckpointBytes   int64           // size of one AutoCheck checkpoint image
	StoreBytes        int64           // bytes the backend persisted across one fail run
	FullSnapshotBytes int64           // size of the BLCR-like full snapshot
	Checkpoints       int             // checkpoints written in the fail-end run
	Mismatch          string          // first mismatch description, if any
}

// state is the comparison key: printed output plus the final cells of the
// observed variables.
type state struct {
	output string
	cells  map[string][]trace.Value
}

type observed struct {
	name  string
	base  uint64
	cells int64
}

// Validator runs the protocol for one program.
type Validator struct {
	Mod  *ir.Module
	Spec core.LoopSpec
	Res  *core.Result
	Dir  string // scratch directory for checkpoint files
	Opts Options

	header  *ir.Block
	observe []observed
}

// New prepares a validator with the default storage setup (L1, file
// backend); res must come from analyzing the same module's trace.
func New(mod *ir.Module, res *core.Result, dir string) (*Validator, error) {
	return NewWithOptions(mod, res, dir, Options{})
}

// NewWithOptions prepares a validator whose checkpoints go through the
// given storage backend configuration and reliability level.
func NewWithOptions(mod *ir.Module, res *core.Result, dir string, opts Options) (*Validator, error) {
	if opts.Level == 0 {
		opts.Level = checkpoint.L1
	}
	v := &Validator{Mod: mod, Spec: res.Spec, Res: res, Dir: dir, Opts: opts}
	fn := mod.Func(res.Spec.Function)
	if fn == nil {
		return nil, fmt.Errorf("validate: no function %q", res.Spec.Function)
	}
	g := cfg.New(fn)
	loop := g.OutermostLoopInRange(res.Spec.StartLine, res.Spec.EndLine)
	if loop == nil {
		return nil, fmt.Errorf("validate: no loop in %q lines %d-%d",
			res.Spec.Function, res.Spec.StartLine, res.Spec.EndLine)
	}
	v.header = loop.Header
	seen := map[string]bool{}
	add := func(name string, base uint64, size int64) {
		if seen[name] || base == 0 {
			return
		}
		seen[name] = true
		v.observe = append(v.observe, observed{name: name, base: base, cells: (size + 7) / 8})
	}
	// Compare printed output plus the final state of the critical
	// variables. Non-critical MLI variables are deliberately excluded:
	// they are either recomputed by the surviving iterations or dead after
	// the loop (that is exactly why AutoCheck does not checkpoint them),
	// so their cells may legitimately differ after a loop-exit restart.
	for _, c := range res.Critical {
		add(c.Name, c.Base, c.SizeBytes)
	}
	return v, nil
}

// run executes the module with a header hook. The hook receives the 1-based
// header entry count and may return an error to abort.
func (v *Validator) run(hook func(m *interp.Machine, entries int64) error) (*interp.Machine, string, error) {
	m := interp.New(v.Mod)
	var entries int64
	m.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
		if blk == v.header && f.Fn.Name == v.Spec.Function {
			entries++
			if hook != nil {
				return hook(mm, entries)
			}
		}
		return nil
	}
	out, err := m.Run()
	return m, out, err
}

func (v *Validator) capture(m *interp.Machine, out string) state {
	st := state{output: out, cells: make(map[string][]trace.Value)}
	for _, o := range v.observe {
		st.cells[o.name] = m.ReadRange(o.base, o.cells)
	}
	return st
}

// reference runs failure-free, returning the reference state and the
// iteration count.
func (v *Validator) reference() (state, int64, error) {
	var entries int64
	m, out, err := v.run(func(_ *interp.Machine, e int64) error {
		entries = e
		return nil
	})
	if err != nil {
		return state{}, 0, fmt.Errorf("validate: reference run failed: %w", err)
	}
	return v.capture(m, out), entries - 1, nil
}

// runWithFailure executes with checkpointing every iteration and a
// fail-stop after failAt completed iterations. It returns the context for
// the subsequent restart and the BLCR-like snapshot size at the failure
// point.
func (v *Validator) runWithFailure(ctx *checkpoint.Context, failAt int64) (int64, error) {
	var snapBytes int64
	_, _, err := v.run(func(m *interp.Machine, e int64) error {
		if e >= 2 {
			if err := ctx.Checkpoint(m, e-1); err != nil {
				return err
			}
		}
		if e == failAt+1 {
			snapBytes = int64(len(checkpoint.FullSnapshot(m, e-1)))
			return interp.ErrFailStop
		}
		return nil
	})
	if !errors.Is(err, interp.ErrFailStop) {
		return 0, fmt.Errorf("validate: expected injected fail-stop, got %v", err)
	}
	return snapBytes, nil
}

// restart re-executes the program, recovering the protected variables
// (minus skip) at the first main-loop entry — the paper's "reading
// checkpoints right before the main computation loop".
func (v *Validator) restart(ctx *checkpoint.Context, skip map[string]bool) (state, error) {
	m, out, err := v.run(func(mm *interp.Machine, e int64) error {
		if e == 1 {
			_, rerr := ctx.Restart(mm, skip)
			return rerr
		}
		return nil
	})
	if err != nil {
		return state{}, fmt.Errorf("validate: restart run failed: %w", err)
	}
	return v.capture(m, out), nil
}

func describeMismatch(ref, got state) string {
	if ref.output != got.output {
		return fmt.Sprintf("output mismatch: reference %q vs restart %q", ref.output, got.output)
	}
	for name, want := range ref.cells {
		if !reflect.DeepEqual(want, got.cells[name]) {
			return fmt.Sprintf("final state of %s differs", name)
		}
	}
	return ""
}

// Run executes the full protocol: sufficiency at a mid-loop and an
// end-of-loop failure point, then per-variable necessity.
func (v *Validator) Run() (*Report, error) {
	ref, iters, err := v.reference()
	if err != nil {
		return nil, err
	}
	if iters < 2 {
		return nil, fmt.Errorf("validate: main loop ran only %d iterations; need at least 2", iters)
	}
	rep := &Report{
		Iterations: iters,
		FailPoints: []int64{(iters + 1) / 2, iters},
		Necessary:  make(map[string]bool),
		Sufficient: true,
	}
	type scenario struct {
		ctx    *checkpoint.Context
		failAt int64
	}
	var scenarios []scenario
	defer func() {
		// Release backend resources (async writer goroutines, staging
		// buffers) once the necessity loop is done with the contexts.
		for _, sc := range scenarios {
			sc.ctx.Close()
		}
	}()
	for i, failAt := range rep.FailPoints {
		cfg := v.Opts.Store
		cfg.Dir = filepath.Join(v.Dir, fmt.Sprintf("fail%d", i))
		ctx, err := checkpoint.NewContextStore(cfg, v.Opts.Level)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, scenario{ctx: ctx, failAt: failAt})
		for _, c := range v.Res.Critical {
			ctx.Protect(c.Name, c.Base, c.SizeBytes)
		}
		snapBytes, err := v.runWithFailure(ctx, failAt)
		if err != nil {
			return nil, err
		}
		if err := ctx.Flush(); err != nil {
			return nil, fmt.Errorf("validate: checkpoint flush: %w", err)
		}
		rep.CheckpointBytes = ctx.LastBytes()
		rep.StoreBytes = ctx.StoreStats().BytesWritten
		rep.FullSnapshotBytes = snapBytes
		rep.Checkpoints = ctx.Count()
		got, err := v.restart(ctx, nil)
		if err != nil {
			return nil, err
		}
		if msg := describeMismatch(ref, got); msg != "" {
			rep.Sufficient = false
			if rep.Mismatch == "" {
				rep.Mismatch = fmt.Sprintf("failAt=%d: %s", failAt, msg)
			}
		}
	}
	// False-positive check (§VI-B): drop one variable at a time.
	for _, c := range v.Res.Critical {
		necessary := false
		for _, sc := range scenarios {
			got, err := v.restart(sc.ctx, map[string]bool{c.Name: true})
			if err != nil {
				// A crash during restart also proves necessity.
				necessary = true
				break
			}
			if describeMismatch(ref, got) != "" {
				necessary = true
				break
			}
		}
		rep.Necessary[c.Name] = necessary
	}
	return rep, nil
}

// Chaos validation: the §VI-B fail-stop protocol generalized from
// "kill the process at two hand-picked iterations" to "enumerate every
// crash window in the storage stack". A sweep runs benchmark × store
// stack × failpoint schedule; each run checkpoints the AutoCheck
// critical variables through a fault-armed backend chain, lets the
// schedule kill, tear, delay or shed wherever it was armed, then
// restarts from the surviving checkpoints and verifies — byte for byte
// — that the recovered state is one the failure-free execution actually
// passed through and that the re-run converges to the failure-free
// final state. A run may also end in a clean typed error (everything
// destroyed, or the recovery path itself under injected fire); what it
// may never do is restart from fabricated state. Every run derives its
// fault randomness from the sweep seed, so a failure is replayed
// exactly from the (seed, benchmark, stack, schedule) triple the report
// prints.
package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"autocheck/internal/cfg"
	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/faultinject"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
	"autocheck/internal/progs"
	"autocheck/internal/server"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

// ChaosOptions parameterizes a sweep. Zero values select the defaults.
type ChaosOptions struct {
	Seed       int64    // fault randomness root (0 means 1)
	Benchmarks []string // ports to sweep (default: IS, EP, CG; Quick: IS)
	Stacks     []string // store stacks (default: ChaosStacks(); Quick: a 3-stack subset)
	Schedules  []string // schedule names (default: every applicable schedule)
	Quick      bool     // CI smoke subset
}

// ChaosSchedule is one named failpoint schedule: what is armed while
// the workload checkpoints (Write) and what is armed while it recovers
// (Restart). Needs restricts the schedule to stacks where its sites
// exist; Retain arms a retention policy so prune-path sites get
// traffic.
type ChaosSchedule struct {
	Name    string
	Write   string
	Restart string
	Needs   string // "": any stack; "async", "incr", "remote": feature required
	Retain  int
}

// ChaosSchedules returns the sweep's schedule catalog. Site hit counts
// are per physical operation, so one logical checkpoint advances
// "store.put" once on a plain stack and two or three times under L2/L3
// replication — the schedules below use small ordinals so they fire
// within any benchmark's handful of iterations.
func ChaosSchedules(quick bool) []ChaosSchedule {
	base := []ChaosSchedule{
		// A Put that fails mid-run: the process dies with the previous
		// checkpoints durable.
		{Name: "put-error", Write: "store.put=error@nth=3"},
		// A write torn on the medium: restart must reject it by CRC (or
		// manifest verification) and fall back.
		{Name: "torn-write", Write: "store.put=torn@nth=4"},
		// Process death after the backend committed but before the writer
		// acknowledged — the durable-but-unacknowledged checkpoint window.
		{Name: "crash-committed", Write: "ckpt.committed=crash@nth=3"},
	}
	if quick {
		return append(base,
			ChaosSchedule{
				Name: "shed-storm", Needs: "remote",
				Write:   "server.request=error@p=0.25",
				Restart: "server.request=error@p=0.25",
			},
			// One node of the cluster dies mid-write and stays dead: the
			// surviving quorum keeps acking, the scrub pass re-replicates,
			// and restart reads route around the corpse.
			ChaosSchedule{Name: "replica-kill-mid-put",
				Write: "store.replicated.r1.put=crash@nth=2", Needs: "replicated"})
	}
	return append(base,
		// Process death inside the backend's own commit path.
		ChaosSchedule{Name: "crash-put", Write: "store.put=crash@nth=2"},
		// Death before anything of the checkpoint reaches the backend.
		ChaosSchedule{Name: "crash-before-put", Write: "ckpt.put=crash@nth=2"},
		// A transient read failure of the newest checkpoint during
		// recovery: restart must fall back (or retry) — never fabricate.
		ChaosSchedule{Name: "get-blip-restart", Restart: "store.get=error@nth=1@oneshot"},
		// Retention pruning whose delete fails mid-churn.
		ChaosSchedule{Name: "prune-delete-error", Write: "store.delete=error@nth=1", Retain: 2},
		// The dedicated writer goroutine dies with a buffered checkpoint.
		ChaosSchedule{Name: "writer-crash", Write: "async.writer=crash@nth=2", Needs: "async"},
		// Network blips every few requests: the client's retry loop must
		// absorb them without the workload noticing.
		ChaosSchedule{Name: "flaky-network", Write: "remote.do=error@every=3", Needs: "remote"},
		// A 503 storm across both phases, Retry-After hints included.
		ChaosSchedule{Name: "shed-storm", Needs: "remote",
			Write:   "server.request=error@p=0.25",
			Restart: "server.request=error@p=0.25"},
		// A slow service: no failures, just latency on every few requests.
		ChaosSchedule{Name: "slow-server", Write: "server.request=delay@every=3@delay=1ms", Needs: "remote"},
		// One node of the cluster dies mid-write and stays dead (see the
		// quick catalog).
		ChaosSchedule{Name: "replica-kill-mid-put",
			Write: "store.replicated.r1.put=crash@nth=2", Needs: "replicated"},
		// A replica partitioned away for the whole fault phase: every
		// write and read against it fails from the first hit (@from), the
		// quorum absorbs it, and the between-phase scrub re-replicates
		// what the node missed once the partition heals.
		ChaosSchedule{Name: "replica-partition",
			Write: "store.replicated.r2.put=error@from=1;store.replicated.r2.get=error@from=1",
			Needs: "replicated"},
		// A slow (not dead) replica during recovery: hedged reads bound
		// the tail and the restart must still verify byte-identically.
		ChaosSchedule{Name: "replica-slow-hedge",
			Restart: "store.replicated.r0.get=delay@every=1@delay=2ms", Needs: "replicated"},
		// The scrubber itself dies mid-sweep; the half-finished repair
		// pass must leave nothing restart can trip over.
		ChaosSchedule{Name: "replica-kill-scrub",
			Restart: "store.replicated.scrub=crash@nth=2", Needs: "replicated"},
	)
}

// ChaosStacks returns every store stack the full sweep covers.
func ChaosStacks() []string {
	return []string{
		"memory", "file", "sharded", "file+l2",
		"file+async", "file+incr", "file+async+incr",
		"remote", "remote+cached",
		"replicated", "replicated+cached",
	}
}

func chaosQuickStacks() []string {
	return []string{"file", "file+async+incr", "remote+cached", "replicated"}
}

// chaosStackConfig translates a stack name ("file+async+incr",
// "remote+cached", "replicated", ...) into a store configuration rooted
// at dir, the checkpoint level, and how many live checkpoint services
// the stack needs (0 for the local kinds, 1 for remote, a 3-node
// cluster for replicated).
func chaosStackConfig(stack, dir string) (store.Config, checkpoint.Level, int, error) {
	scfg := store.Config{Dir: dir}
	level := checkpoint.L1
	services := 0
	for i, part := range strings.Split(stack, "+") {
		if i == 0 {
			kind, err := store.ParseKind(part)
			if err != nil {
				return scfg, level, 0, fmt.Errorf("harness: stack %q: %w", stack, err)
			}
			scfg.Kind = kind
			switch kind {
			case store.KindRemote:
				services = 1
			case store.KindReplicated:
				services = 3
				// Majority quorums (2/2 of 3) and an aggressive hedge so
				// the slow-replica schedules actually hedge within a run.
				scfg.HedgeAfter = time.Millisecond
			}
			continue
		}
		switch part {
		case "async":
			scfg.Async = true
		case "incr":
			scfg.Incremental = true
			scfg.Keyframe = 4
		case "cached":
			scfg.CacheMB = 8
		case "l2":
			level = checkpoint.L2
		default:
			return scfg, level, 0, fmt.Errorf("harness: stack %q: unknown layer %q", stack, part)
		}
	}
	return scfg, level, services, nil
}

func stackSatisfies(stack, needs string) bool {
	switch needs {
	case "":
		return true
	case "remote":
		return strings.HasPrefix(stack, "remote")
	default:
		return strings.Contains(stack, needs)
	}
}

// ChaosRun is one swept combination's outcome.
type ChaosRun struct {
	Bench    string
	Stack    string
	Schedule string
	Seed     int64 // this run's derived fault seed
	Events   int   // failpoints fired across both phases
	EventLog []string
	// Outcome: "recovered" (restart landed on a verified checkpoint and
	// the re-run matched the reference), "absorbed" (the schedule fired
	// but the stack rode it out and still recovered), "clean-error"
	// (recovery refused with a typed error — nothing valid survived, or
	// the recovery path was itself under fire), "no-fire" (the schedule
	// never triggered on this stack; recovery verified anyway).
	Outcome string
	OK      bool
	Detail  string
}

// Replay renders the CLI invocation that reruns exactly this
// combination.
func (r ChaosRun) Replay(sweepSeed int64) string {
	return fmt.Sprintf("autocheck chaos -seed %d -benchmark %s -stack %s -schedule %s",
		sweepSeed, r.Bench, r.Stack, r.Schedule)
}

// ChaosReport is the sweep summary.
type ChaosReport struct {
	Seed     int64
	Runs     []ChaosRun
	Failures int
}

// chaosPrep caches one benchmark's analysis and reference trajectory.
type chaosPrep struct {
	mod     *ir.Module
	res     *core.Result
	header  *ir.Block
	iters   int64
	perIter map[int64]map[string][]trace.Value // critical cells at each iteration
	final   chaosState
}

type chaosState struct {
	output string
	cells  map[string][]trace.Value
}

func (p *chaosPrep) capture(m *interp.Machine) map[string][]trace.Value {
	cells := make(map[string][]trace.Value, len(p.res.Critical))
	for _, c := range p.res.Critical {
		if c.Base == 0 {
			continue
		}
		cells[c.Name] = m.ReadRange(c.Base, (c.SizeBytes+7)/8)
	}
	return cells
}

// chaosPrepare compiles, analyzes, and records the failure-free
// trajectory of one benchmark: the critical cells at every main-loop
// iteration (what a checkpoint at that iteration must restore) and the
// final state (what any recovery must converge back to).
func chaosPrepare(name string) (*chaosPrep, error) {
	bench := progs.Get(name)
	if bench == nil {
		return nil, fmt.Errorf("harness: unknown benchmark %q", name)
	}
	p, err := Prepare(bench, 0)
	if err != nil {
		return nil, err
	}
	res, err := p.Analyze(0)
	if err != nil {
		return nil, err
	}
	fn := p.Mod.Func(res.Spec.Function)
	if fn == nil {
		return nil, fmt.Errorf("harness: no function %s", res.Spec.Function)
	}
	loop := cfg.New(fn).OutermostLoopInRange(res.Spec.StartLine, res.Spec.EndLine)
	if loop == nil {
		return nil, fmt.Errorf("harness: no loop for %s", res.Spec.Function)
	}
	prep := &chaosPrep{mod: p.Mod, res: res, header: loop.Header,
		perIter: make(map[int64]map[string][]trace.Value)}
	m := interp.New(p.Mod)
	var entries int64
	m.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
		if blk != prep.header || f.Fn.Name != res.Spec.Function {
			return nil
		}
		entries++
		if entries >= 2 {
			prep.perIter[entries-1] = prep.capture(mm)
		}
		return nil
	}
	out, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("harness: chaos reference run: %w", err)
	}
	prep.iters = entries - 1
	prep.final = chaosState{output: out, cells: prep.capture(m)}
	if prep.iters < 2 {
		return nil, fmt.Errorf("harness: %s: main loop ran only %d iterations", name, prep.iters)
	}
	return prep, nil
}

// chaosSeed derives one combination's fault seed from the sweep seed.
func chaosSeed(seed int64, bench, stack, schedule string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", bench, stack, schedule)
	derived := seed ^ int64(h.Sum64())
	if derived == 0 {
		derived = 1
	}
	return derived
}

// runGuarded executes fn, converting an injected-crash panic into a
// process-death marker; any other panic propagates.
func runGuarded(fn func() error) (err error, crashed *faultinject.Crash) {
	defer func() {
		if p := recover(); p != nil {
			c, ok := faultinject.AsCrash(p)
			if !ok {
				panic(p)
			}
			crashed = c
		}
	}()
	return fn(), nil
}

// chaosService is the per-run checkpoint service of the remote stacks:
// memory-backed namespaces, the run's registry armed on both the
// request path and the namespace backends.
type chaosService struct {
	srv  *server.Server
	addr string
	errc chan error
}

func startChaosService(reg *faultinject.Registry) (*chaosService, error) {
	srv := server.NewWithFactory(
		server.Config{MaxInFlight: 16, Faults: reg},
		func(ns string) (store.Backend, error) {
			b := store.NewMemory()
			store.InjectFaults(b, reg)
			return b, nil
		})
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	select {
	case addr := <-ready:
		return &chaosService{srv: srv, addr: addr, errc: errc}, nil
	case err := <-errc:
		return nil, fmt.Errorf("harness: chaos service: %w", err)
	}
}

func (s *chaosService) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.srv.Shutdown(ctx)
	<-s.errc
}

// RunChaosValidation executes the sweep and reports every run. The
// returned error covers harness-level problems (unknown benchmark,
// broken stack name); injected failures never error the sweep — they
// land in the report, failures counted and replayable.
func RunChaosValidation(scratch string, opts ChaosOptions) (*ChaosReport, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	benches := opts.Benchmarks
	if len(benches) == 0 {
		if opts.Quick {
			benches = []string{"IS"}
		} else {
			benches = []string{"IS", "EP", "CG"}
		}
	}
	stacks := opts.Stacks
	if len(stacks) == 0 {
		if opts.Quick {
			stacks = chaosQuickStacks()
		} else {
			stacks = ChaosStacks()
		}
	}
	catalog := ChaosSchedules(opts.Quick)
	if len(opts.Schedules) > 0 {
		var filtered []ChaosSchedule
		for _, name := range opts.Schedules {
			found := false
			for _, s := range catalog {
				if s.Name == name {
					filtered = append(filtered, s)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("harness: unknown chaos schedule %q", name)
			}
		}
		catalog = filtered
	}
	rep := &ChaosReport{Seed: opts.Seed}
	for _, bname := range benches {
		prep, err := chaosPrepare(bname)
		if err != nil {
			return nil, err
		}
		for _, stack := range stacks {
			if _, _, _, err := chaosStackConfig(stack, "x"); err != nil {
				return nil, err
			}
			for runIdx, sched := range catalog {
				if !stackSatisfies(stack, sched.Needs) {
					continue
				}
				dir := filepath.Join(scratch, fmt.Sprintf("%s-%s-%s-%d", bname, strings.ReplaceAll(stack, "+", "_"), sched.Name, runIdx))
				run := chaosOne(prep, bname, stack, sched, dir, chaosSeed(opts.Seed, bname, stack, sched.Name))
				if !run.OK {
					rep.Failures++
				}
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	return rep, nil
}

// chaosOne runs one benchmark × stack × schedule combination.
func chaosOne(prep *chaosPrep, bname, stack string, sched ChaosSchedule, dir string, seed int64) ChaosRun {
	run := ChaosRun{Bench: bname, Stack: stack, Schedule: sched.Name, Seed: seed}
	fail := func(format string, args ...any) ChaosRun {
		run.OK = false
		run.Detail = fmt.Sprintf(format, args...)
		return run
	}
	reg := faultinject.NewRegistry(seed)
	if err := reg.ArmSchedule(sched.Write); err != nil {
		return fail("bad write schedule: %v", err)
	}
	scfg, level, services, err := chaosStackConfig(stack, dir)
	if err != nil {
		return fail("%v", err)
	}
	scfg.Faults = reg
	// Remote stacks get one live checkpoint service; replicated stacks a
	// cluster of them. All share the run's registry, so server-side sites
	// (store.put on a node's backend) stay injectable — node-targeted
	// faults use the client-side per-replica sites instead.
	var addrs []string
	for i := 0; i < services; i++ {
		svc, err := startChaosService(reg)
		if err != nil {
			return fail("%v", err)
		}
		defer svc.stop()
		addrs = append(addrs, svc.addr)
	}
	switch scfg.Kind {
	case store.KindRemote:
		scfg.Addr = addrs[0]
	case store.KindReplicated:
		scfg.Addrs = addrs
	}

	// The memory backend is volatile: nothing survives process death, so
	// its chaos scenario is the in-process restart — the store outlives
	// the checkpointing Context (a failed worker re-attaching to a live
	// embedded store) rather than the process. One backend instance is
	// shared by both phases; the durable kinds re-open from the medium.
	volatile := scfg.Kind == store.KindMemory
	var sharedBase store.Backend
	openCtx := func() (*checkpoint.Context, error) {
		if !volatile {
			return checkpoint.NewContextStore(scfg, level)
		}
		if sharedBase == nil {
			b, err := store.Open(scfg)
			if err != nil {
				return nil, err
			}
			sharedBase = b
		}
		return checkpoint.NewContextBackend(sharedBase, level)
	}

	// ---- fault phase: checkpoint every iteration until the schedule
	// kills the "process" (error or crash) or the run completes.
	ctx, err := openCtx()
	if err != nil {
		return fail("open context: %v", err)
	}
	ctx.SetFaults(reg)
	for _, c := range prep.res.Critical {
		ctx.Protect(c.Name, c.Base, c.SizeBytes)
	}
	if sched.Retain > 0 {
		ctx.Retain(sched.Retain)
	}
	committed := 0
	runErr, crashed := runGuarded(func() error {
		m := interp.New(prep.mod)
		var entries int64
		m.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
			if blk != prep.header || f.Fn.Name != prep.res.Spec.Function {
				return nil
			}
			entries++
			if entries < 2 {
				return nil
			}
			if err := ctx.Checkpoint(mm, entries-1); err != nil {
				return err
			}
			committed++
			return nil
		}
		_, err := m.Run()
		return err
	})
	died := crashed != nil || runErr != nil
	// Settle durability knowledge: without an async layer every counted
	// commit is durable; with one, only a clean flush proves it.
	durable := committed > 0
	if flushErr := ctx.Flush(); flushErr != nil && scfg.Async {
		durable = false
	}
	ctx.Close()

	// ---- recovery phase: fresh context over the surviving store, the
	// restart schedule (if any) armed on the same registry.
	reg.DisarmAll()
	if err := reg.ArmSchedule(sched.Restart); err != nil {
		return fail("bad restart schedule: %v", err)
	}

	// Replicated stacks run one deterministic scrub sweep between death
	// and recovery. The background scrubber's cadence is wall-clock and
	// would not replay, so the harness invokes the sweep explicitly at
	// the one point it matters: after the fault phase diverged the
	// replicas, before the restart that must not notice any of it. The
	// restart schedule is already armed, so scrub-targeted faults
	// (store.replicated.scrub) land here; an aborted scrub is
	// survivable — the recovery phase below is what verifies state.
	if scfg.Kind == store.KindReplicated {
		scrubCfg := scfg
		scrubCfg.CacheMB = 0
		_, _ = runGuarded(func() error {
			b, err := store.Open(scrubCfg)
			if err != nil {
				return err
			}
			defer b.Close()
			if rep, ok := b.(*store.Replicated); ok {
				_, _, err = rep.ScrubOnce()
			}
			return err
		})
	}

	var restored, finalCells map[string][]trace.Value
	var restartIter int64
	var out string
	recErr, recCrashed := runGuarded(func() error {
		ctx2, err := openCtx()
		if err != nil {
			return err
		}
		defer ctx2.Close()
		ctx2.SetFaults(reg)
		for _, c := range prep.res.Critical {
			ctx2.Protect(c.Name, c.Base, c.SizeBytes)
		}
		m2 := interp.New(prep.mod)
		var entries int64
		m2.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
			if blk != prep.header || f.Fn.Name != prep.res.Spec.Function {
				return nil
			}
			entries++
			if entries == 1 {
				iter, rerr := ctx2.Restart(mm, nil)
				if rerr != nil {
					return rerr
				}
				restartIter = iter
				restored = prep.capture(mm)
			}
			return nil
		}
		out, err = m2.Run()
		if err == nil {
			finalCells = prep.capture(m2)
		}
		return err
	})
	run.Events = reg.Fired()
	for _, e := range reg.Events() {
		run.EventLog = append(run.EventLog, e.String())
	}

	switch {
	case recCrashed != nil:
		// A crash during recovery is only legitimate if the restart
		// schedule armed one.
		if sched.Restart == "" {
			return fail("recovery crashed with no restart schedule armed: %v", recCrashed)
		}
		run.OK = true
		run.Outcome = "clean-error"
		run.Detail = recCrashed.Error()
	case recErr != nil:
		// Recovery refused. That is the contract — a typed error, never
		// fabricated state — but only when there was genuinely nothing
		// durable to recover, or the recovery path itself was under
		// injected fire.
		if durable && sched.Restart == "" {
			return fail("restart failed despite %d durable checkpoints: %v", committed, recErr)
		}
		run.OK = true
		run.Outcome = "clean-error"
		run.Detail = recErr.Error()
	default:
		if restartIter < 1 || restartIter > prep.iters {
			return fail("restart recovered impossible iteration %d (run had %d)", restartIter, prep.iters)
		}
		want, ok := prep.perIter[restartIter]
		if !ok {
			return fail("no reference state for recovered iteration %d", restartIter)
		}
		if !reflect.DeepEqual(restored, want) {
			return fail("restored state at iteration %d differs from the failure-free run (silent corruption)", restartIter)
		}
		if out != prep.final.output {
			return fail("re-run output diverged after restart at iteration %d", restartIter)
		}
		if !reflect.DeepEqual(finalCells, prep.final.cells) {
			return fail("final critical-variable state diverged after restart at iteration %d", restartIter)
		}
		run.OK = true
		switch {
		case run.Events == 0:
			run.Outcome = "no-fire"
		case died:
			run.Outcome = "recovered"
			run.Detail = fmt.Sprintf("died after %d commits, recovered iteration %d", committed, restartIter)
		default:
			run.Outcome = "absorbed"
			run.Detail = fmt.Sprintf("%d faults absorbed; recovery verified at iteration %d", run.Events, restartIter)
		}
	}
	return run
}

// FormatChaos renders the sweep report, failures first in replayable
// form.
func FormatChaos(rep *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos validation sweep (seed %d): %d runs, %d failures\n",
		rep.Seed, len(rep.Runs), rep.Failures)
	for _, r := range rep.Runs {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %s  %-8s %-16s %-18s events=%-3d %-11s %s\n",
			status, r.Bench, r.Stack, r.Schedule, r.Events, r.Outcome, r.Detail)
		if !r.OK {
			fmt.Fprintf(&b, "        seed=%d  schedule={write:%q restart:%q}\n        replay: %s\n",
				r.Seed, scheduleSpec(r.Schedule, true), scheduleSpec(r.Schedule, false), r.Replay(rep.Seed))
			for _, e := range r.EventLog {
				fmt.Fprintf(&b, "        fired: %s\n", e)
			}
		}
	}
	return b.String()
}

// scheduleSpec looks a named schedule's spec back up for the report.
func scheduleSpec(name string, write bool) string {
	for _, quick := range []bool{false, true} {
		for _, s := range ChaosSchedules(quick) {
			if s.Name == name {
				if write {
					return s.Write
				}
				return s.Restart
			}
		}
	}
	return ""
}

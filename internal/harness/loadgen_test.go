package harness

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"autocheck/internal/server"
	"autocheck/internal/store"
)

// TestRunLoadgen drives the generator against a live in-process service
// and checks the aggregate shape: every tenant saw traffic, nothing
// failed on a healthy service, and percentiles are ordered.
func TestRunLoadgen(t *testing.T) {
	svc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	run, err := RunLoadgen(LoadgenConfig{
		Addr: ts.URL, Tenants: 3, Clients: 6, Ops: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Ops != 6*20 || run.Failures != 0 {
		t.Fatalf("ops=%d failures=%d, want 120/0", run.Ops, run.Failures)
	}
	if len(run.Tenants) != 3 {
		t.Fatalf("tenants = %d, want 3", len(run.Tenants))
	}
	for _, tl := range run.Tenants {
		if tl.Clients != 2 || tl.Ops != 40 {
			t.Errorf("%s: clients=%d ops=%d, want 2/40", tl.Tenant, tl.Clients, tl.Ops)
		}
		if tl.OpsPerSec <= 0 {
			t.Errorf("%s: zero throughput", tl.Tenant)
		}
		if tl.P50 > tl.P95 || tl.P95 > tl.P99 || tl.P99 <= 0 {
			t.Errorf("%s: unordered percentiles p50=%v p95=%v p99=%v", tl.Tenant, tl.P50, tl.P95, tl.P99)
		}
	}
	if out := FormatLoadgen(run); !strings.Contains(out, "tenant-02") {
		t.Errorf("format output missing tenant row:\n%s", out)
	}
}

// TestRunLoadgenDeterministicFailures pins the seeded failure
// distribution: the same client-side fault schedule and seed produce
// the same failure count twice, and failures are nonzero with an
// always-failing schedule.
func TestRunLoadgenDeterministicFailures(t *testing.T) {
	svc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cfg := LoadgenConfig{
		Addr: ts.URL, Tenants: 2, Clients: 4, Ops: 10, Seed: 7,
		// Every attempt fails at the client-side remote.do site; with the
		// retry budget exhausted every operation fails, deterministically.
		Schedule: store.SiteRemoteDo + "=error@every=1",
		FailFast: true,
	}
	a, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures == 0 || a.Failures != a.Ops {
		t.Fatalf("failures=%d ops=%d, want every op to fail under error@every=1", a.Failures, a.Ops)
	}
	if a.Failures != b.Failures {
		t.Errorf("same seed, different failure counts: %d vs %d", a.Failures, b.Failures)
	}

	if _, err := RunLoadgen(LoadgenConfig{Addr: ts.URL, Schedule: "not-a-schedule"}); err == nil {
		t.Error("bad schedule accepted")
	}
}

// Package harness regenerates the paper's evaluation artifacts: Table II
// (benchmarks and detected critical variables), Table III (analysis-time
// breakdown with and without parallel pre-processing), Table IV
// (checkpoint storage versus a BLCR-like full snapshot), and the §VI-B
// validation summary. Each Run* function returns structured rows; the
// Format* functions render them as aligned text tables.
package harness

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"autocheck/internal/cfg"
	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
	"autocheck/internal/pool"
	"autocheck/internal/progs"
	"autocheck/internal/store"
	"autocheck/internal/trace"
	"autocheck/internal/validate"
)

// Prepared bundles everything needed to analyze one benchmark.
type Prepared struct {
	Bench   *progs.Benchmark
	Mod     *ir.Module
	Spec    core.LoopSpec
	Records []trace.Record
	Data    []byte // textual trace encoding
	GenTime time.Duration

	binData []byte // lazily encoded by BinData
}

// BinData returns the compact binary trace encoding, encoding it on
// first use (Table IV and validation runs never need it, so Prepare does
// not pay for it).
func (p *Prepared) BinData() []byte {
	if p.binData == nil {
		p.binData = trace.EncodeBinary(p.Records)
	}
	return p.binData
}

// Prepare compiles, runs, and traces a benchmark at the given scale
// (0 = default).
func Prepare(b *progs.Benchmark, scale int) (*Prepared, error) {
	src := b.Source(scale)
	mod, err := interp.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	spec, err := b.Spec(scale)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	recs, _, err := interp.TraceProgram(mod)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: trace: %w", b.Name, err)
	}
	gen := time.Since(t0)
	return &Prepared{
		Bench: b, Mod: mod, Spec: spec, Records: recs,
		Data: trace.EncodeAll(recs), GenTime: gen,
	}, nil
}

// Analyze runs AutoCheck over a prepared benchmark's textual trace.
func (p *Prepared) Analyze(workers int) (*core.Result, error) {
	return p.AnalyzeData(p.Data, workers, false)
}

// AnalyzeBinary runs AutoCheck over the benchmark's binary trace.
func (p *Prepared) AnalyzeBinary() (*core.Result, error) {
	return p.AnalyzeData(p.BinData(), 0, false)
}

// AnalyzeData runs AutoCheck over the given trace encoding, optionally
// through the streaming (never-materialized) path.
func (p *Prepared) AnalyzeData(data []byte, workers int, streaming bool) (*core.Result, error) {
	opts := p.opts()
	opts.Workers = workers
	opts.Streaming = streaming
	return core.AnalyzeBytes(data, p.Spec, opts)
}

// AnalyzeOnline runs the engine single-sweep over the prepared records,
// feeding them one at a time as a live tracer would (§IX online mode; no
// re-execution, the materialized records stand in for the feed).
func (p *Prepared) AnalyzeOnline() (*core.Result, error) {
	eng, err := core.NewEngine(p.Spec, p.opts())
	if err != nil {
		return nil, err
	}
	for i := range p.Records {
		eng.Observe(&p.Records[i])
	}
	return eng.Finish()
}

// Input adapts the prepared benchmark into a core.AnalyzeMany input over
// its materialized records.
func (p *Prepared) Input() core.Input {
	return core.Input{Name: p.Bench.Name, Spec: p.Spec, Opts: p.opts(), Records: p.Records}
}

func (p *Prepared) opts() core.Options {
	opts := core.DefaultOptions()
	opts.Module = p.Mod
	return opts
}

// ---- Table II ----

// Table2Row is one row of Table II.
type Table2Row struct {
	Name        string
	Description string
	LOC         int
	TraceBytes  int64 // textual trace size
	BinaryBytes int64 // compact binary trace size
	GenTime     time.Duration
	Critical    []string // "name (Type)" in report order
	MCLR        string
}

// RunTable2 regenerates Table II over all 14 benchmarks.
func RunTable2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, b := range progs.All() {
		p, err := Prepare(b, 0)
		if err != nil {
			return nil, err
		}
		res, err := p.Analyze(0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, table2Row(p, res))
	}
	return rows, nil
}

// RunTable2Parallel regenerates Table II with the whole per-benchmark
// pipeline fanned out over a worker pool: preparation (compile + trace)
// runs workers-wide, then all 14 analyses run concurrently through
// core.AnalyzeMany — one engine per trace. Rows are identical to
// RunTable2 apart from timings.
func RunTable2Parallel(workers int) ([]Table2Row, error) {
	benches := progs.All()
	preps := make([]*Prepared, len(benches))
	perrs := make([]error, len(benches))
	pool.ForEach(len(benches), workers, func(i int) {
		preps[i], perrs[i] = Prepare(benches[i], 0)
	})
	if err := errors.Join(perrs...); err != nil {
		return nil, err
	}
	inputs := make([]core.Input, len(preps))
	for i, p := range preps {
		inputs[i] = p.Input()
	}
	results, err := core.AnalyzeMany(inputs, workers)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(preps))
	for i, p := range preps {
		rows[i] = table2Row(p, results[i])
	}
	return rows, nil
}

// table2Row renders one benchmark's analysis into its Table II row.
func table2Row(p *Prepared, res *core.Result) Table2Row {
	row := Table2Row{
		Name:        p.Bench.Name,
		Description: p.Bench.Description,
		LOC:         p.Bench.LOC(),
		TraceBytes:  int64(len(p.Data)),
		BinaryBytes: int64(len(p.BinData())),
		GenTime:     p.GenTime,
		MCLR:        fmt.Sprintf("%d-%d (main)", p.Spec.StartLine, p.Spec.EndLine),
	}
	for _, c := range res.Critical {
		row.Critical = append(row.Critical, fmt.Sprintf("%s (%s)", c.Name, c.Type))
	}
	return row
}

// FormatTable2 renders Table II.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: benchmarks and detected critical variables\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Name\tLOC\tTrace size (text)\tTrace size (binary)\tTrace gen\tCritical variables (type)\tMCLR")
	for _, r := range rows {
		bin := fmtBytes(r.BinaryBytes)
		if r.TraceBytes > 0 && r.BinaryBytes > 0 {
			bin = fmt.Sprintf("%s (%.0f%%)", bin, 100*float64(r.BinaryBytes)/float64(r.TraceBytes))
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			r.Name, r.LOC, fmtBytes(r.TraceBytes), bin, fmtDur(r.GenTime),
			strings.Join(r.Critical, ", "), r.MCLR)
	}
	w.Flush()
	return b.String()
}

// ---- Table III ----

// Table3Row is one row of Table III.
type Table3Row struct {
	Name        string
	PreSerial   time.Duration
	PrePar      time.Duration
	PreBinary   time.Duration // binary-format pre-processing (serial decode)
	Dep         time.Duration
	Identify    time.Duration
	TotalSerial time.Duration
	TotalPar    time.Duration
}

// RunTable3 regenerates Table III: per-phase analysis cost — serial text,
// `workers`-way parallel text, and compact binary pre-processing.
func RunTable3(workers int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, b := range progs.All() {
		p, err := Prepare(b, 0)
		if err != nil {
			return nil, err
		}
		serial, err := p.Analyze(0)
		if err != nil {
			return nil, err
		}
		par, err := p.Analyze(workers)
		if err != nil {
			return nil, err
		}
		bin, err := p.AnalyzeBinary()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Name:        b.Name,
			PreSerial:   serial.Timing.Pre,
			PrePar:      par.Timing.Pre,
			PreBinary:   bin.Timing.Pre,
			Dep:         serial.Timing.Dep,
			Identify:    serial.Timing.Identify,
			TotalSerial: serial.Timing.Total,
			TotalPar:    par.Timing.Total,
		})
	}
	return rows, nil
}

// FormatTable3 renders Table III.
func FormatTable3(rows []Table3Row, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: analysis cost (parallel pre-processing with %d workers)\n", workers)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Name\tPre (par / binary)\tDependency\tIdentify\tTotal (par)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s (%s / %s)\t%s\t%s\t%s (%s)\n",
			r.Name, fmtDur(r.PreSerial), fmtDur(r.PrePar), fmtDur(r.PreBinary),
			fmtDur(r.Dep), fmtDur(r.Identify),
			fmtDur(r.TotalSerial), fmtDur(r.TotalPar))
	}
	w.Flush()
	return b.String()
}

// ---- Table IV ----

// Table4Row is one row of Table IV.
type Table4Row struct {
	Name           string
	InputScale     int
	BLCRBytes      int64 // full-process snapshot
	AutoCheckBytes int64 // variable checkpoint
}

// RunTable4 regenerates Table IV at each benchmark's large scale: the
// size of one BLCR-like full snapshot versus one AutoCheck variable
// checkpoint, both captured at the same main-loop boundary.
func RunTable4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, b := range progs.All() {
		p, err := Prepare(b, b.LargeScale)
		if err != nil {
			return nil, err
		}
		res, err := p.Analyze(0)
		if err != nil {
			return nil, err
		}
		acBytes, blcrBytes, err := MeasureStorage(p.Mod, res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Name: b.Name, InputScale: b.LargeScale,
			BLCRBytes: blcrBytes, AutoCheckBytes: acBytes,
		})
	}
	return rows, nil
}

// MeasureStorage runs a module until the second main-loop boundary and
// captures the size of an AutoCheck variable checkpoint and a BLCR-like
// full snapshot at that instant.
func MeasureStorage(mod *ir.Module, res *core.Result) (autoCheck, blcr int64, err error) {
	fn := mod.Func(res.Spec.Function)
	if fn == nil {
		return 0, 0, fmt.Errorf("harness: no function %s", res.Spec.Function)
	}
	g := cfg.New(fn)
	loop := g.OutermostLoopInRange(res.Spec.StartLine, res.Spec.EndLine)
	if loop == nil {
		return 0, 0, fmt.Errorf("harness: no loop for %s", res.Spec.Function)
	}
	// Size the checkpoint in memory (no files needed for Table IV).
	m := interp.New(mod)
	entries := 0
	done := fmt.Errorf("harness: measured")
	m.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
		if blk != loop.Header || f.Fn.Name != res.Spec.Function {
			return nil
		}
		entries++
		if entries < 2 {
			return nil
		}
		for _, c := range res.Critical {
			autoCheck += 8 * ((c.SizeBytes + 7) / 8)
			autoCheck += int64(len(c.Name)) + 24 // record header
		}
		autoCheck += 24 // file header + CRC
		blcr = int64(len(checkpoint.FullSnapshot(mm, int64(entries-1))))
		return done
	}
	if _, rerr := m.Run(); rerr != nil && rerr != done {
		return 0, 0, rerr
	}
	if blcr == 0 {
		return 0, 0, fmt.Errorf("harness: main loop boundary never reached")
	}
	return autoCheck, blcr, nil
}

// StorageRun is the outcome of checkpointing one full benchmark run
// through a storage backend configuration (the Table IV storage
// comparison extended to whole runs: full snapshots vs critical-set
// images vs what the backend actually persisted).
type StorageRun struct {
	Checkpoints     int
	LogicalBytes    int64 // sum of critical-set checkpoint images
	PersistedBytes  int64 // bytes the backend chain actually wrote
	SnapshotBytes   int64 // sum of BLCR-like full snapshots at the same points
	SectionsSkipped int64 // unchanged variables elided by the incremental decorator
	Keyframes       int64
	Deltas          int64
	RestartIter     int64       // iteration recovered from the final checkpoint
	Stats           store.Stats // the backend chain's full accounting snapshot
}

// MeasureStorageRun executes the module to completion, checkpointing the
// AutoCheck-critical variables at every main-loop boundary through the
// backend selected by cfg, and verifies a restart recovers the final
// checkpoint. When withSnapshots is set it also sizes a BLCR-like full
// snapshot at each boundary for comparison.
func MeasureStorageRun(mod *ir.Module, res *core.Result, scfg store.Config, level checkpoint.Level, withSnapshots bool) (*StorageRun, error) {
	fn := mod.Func(res.Spec.Function)
	if fn == nil {
		return nil, fmt.Errorf("harness: no function %s", res.Spec.Function)
	}
	g := cfg.New(fn)
	loop := g.OutermostLoopInRange(res.Spec.StartLine, res.Spec.EndLine)
	if loop == nil {
		return nil, fmt.Errorf("harness: no loop for %s", res.Spec.Function)
	}
	ctx, err := checkpoint.NewContextStore(scfg, level)
	if err != nil {
		return nil, err
	}
	defer ctx.Close()
	for _, c := range res.Critical {
		ctx.Protect(c.Name, c.Base, c.SizeBytes)
	}
	out := &StorageRun{}
	m := interp.New(mod)
	entries := 0
	m.BlockHook = func(mm *interp.Machine, f *interp.Frame, blk *ir.Block) error {
		if blk != loop.Header || f.Fn.Name != res.Spec.Function {
			return nil
		}
		entries++
		if entries < 2 {
			return nil
		}
		if err := ctx.Checkpoint(mm, int64(entries-1)); err != nil {
			return err
		}
		if withSnapshots {
			out.SnapshotBytes += int64(len(checkpoint.FullSnapshot(mm, int64(entries-1))))
		}
		return nil
	}
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("harness: storage run: %w", err)
	}
	if err := ctx.Flush(); err != nil {
		return nil, fmt.Errorf("harness: storage flush: %w", err)
	}
	out.Checkpoints = ctx.Count()
	out.LogicalBytes = ctx.TotalBytes()
	st := ctx.StoreStats()
	out.Stats = st
	out.PersistedBytes = st.BytesWritten
	out.SectionsSkipped = st.SectionsSkipped
	out.Keyframes = st.Keyframes
	out.Deltas = st.Deltas
	if out.Checkpoints > 0 {
		m2 := interp.New(mod)
		iter, err := ctx.Restart(m2, nil)
		if err != nil {
			return nil, fmt.Errorf("harness: restart after storage run: %w", err)
		}
		out.RestartIter = iter
	}
	return out, nil
}

// ---- many-clients checkpoint service scenario ----

// ManyClientsRun aggregates N concurrent checkpointing clients — each
// its own checkpoint.Context over its own backend chain (for the remote
// kind: its own namespace of one shared checkpoint service) — running
// the same benchmark and checkpointing its critical variables at every
// main-loop boundary.
type ManyClientsRun struct {
	Clients         int
	Checkpoints     int           // total checkpoints written across clients
	BytesWritten    int64         // bytes handed to storage (client-observed)
	Elapsed         time.Duration // wall clock for the concurrent phase
	CkptsPerSec     float64
	RestartsOK        int   // clients whose final restart recovered the last checkpoint
	CacheHits         int64 // summed across clients (cache tier only)
	CacheFollowerHits int64 // single-flight followers served by a leader's fetch
	CacheMisses       int64
	SectionsWritten   int64
}

// manyClientsRunSeq disambiguates the scratch locations (directories,
// and therefore remote namespaces) of successive RunManyClients calls
// in one process, so benchmark iterations don't append into each
// other's key spaces.
var manyClientsRunSeq atomic.Int64

// RunManyClients prepares `clients` independent copies of the named
// benchmark (own module, own machine — nothing shared but the storage
// service) and runs them concurrently, each checkpointing through the
// backend chain described by tmpl. For file-like kinds each client
// writes under tmpl.Dir/<unique>/client-NNN; for the remote kind the
// same per-client location is derived into a unique service namespace,
// so N clients against one server exercise genuinely concurrent traffic
// with disjoint key spaces. Every client verifies its own restart.
func RunManyClients(benchName string, scale int, tmpl store.Config, level checkpoint.Level, clients int) (*ManyClientsRun, error) {
	if clients < 1 {
		clients = 1
	}
	bench := progs.Get(benchName)
	if bench == nil {
		return nil, fmt.Errorf("harness: unknown benchmark %q", benchName)
	}
	type client struct {
		p   *Prepared
		res *core.Result
	}
	cls := make([]client, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Prepare(bench, scale)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := p.Analyze(0)
			if err != nil {
				errs[i] = err
				return
			}
			cls[i] = client{p: p, res: res}
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	runID := manyClientsRunSeq.Add(1)
	out := &ManyClientsRun{Clients: clients}
	runs := make([]*StorageRun, clients)
	stats := make([]store.Stats, clients)
	t0 := time.Now()
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := tmpl
			cfg.Dir = filepath.Join(tmpl.Dir, fmt.Sprintf("mc%06d", runID), fmt.Sprintf("client-%03d", i))
			run, err := MeasureStorageRun(cls[i].p.Mod, cls[i].res, cfg, level, false)
			if err != nil {
				errs[i] = fmt.Errorf("harness: client %d: %w", i, err)
				return
			}
			runs[i] = run
			stats[i] = run.Stats
		}(i)
	}
	wg.Wait()
	out.Elapsed = time.Since(t0)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for i, run := range runs {
		out.Checkpoints += run.Checkpoints
		out.BytesWritten += run.PersistedBytes
		out.SectionsWritten += stats[i].SectionsWritten
		out.CacheHits += stats[i].CacheHits
		out.CacheFollowerHits += stats[i].CacheFollowerHits
		out.CacheMisses += stats[i].CacheMisses
		// A restart that fell back to an older checkpoint (torn/corrupt
		// newest object) is recovery, but not the "recovered the last
		// checkpoint" this scenario promises — count only exact recovery.
		if run.Checkpoints > 0 && run.RestartIter == int64(run.Checkpoints) {
			out.RestartsOK++
		}
	}
	if s := out.Elapsed.Seconds(); s > 0 {
		out.CkptsPerSec = float64(out.Checkpoints) / s
	}
	return out, nil
}

// FormatManyClients renders one scenario line.
func FormatManyClients(r *ManyClientsRun) string {
	return fmt.Sprintf(
		"%d clients: %d checkpoints in %v (%.0f ckpt/s), %s written, restarts %d/%d ok, cache %d hit / %d follower / %d miss\n",
		r.Clients, r.Checkpoints, r.Elapsed.Round(time.Millisecond), r.CkptsPerSec,
		fmtBytes(r.BytesWritten), r.RestartsOK, r.Clients, r.CacheHits, r.CacheFollowerHits, r.CacheMisses)
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table IV: storage cost for checkpointing\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Name\tInput scale\tBLCR-like (full image)\tAutoCheck (variables)\tReduction")
	for _, r := range rows {
		red := "-"
		if r.AutoCheckBytes > 0 {
			red = fmt.Sprintf("%.1fx", float64(r.BLCRBytes)/float64(r.AutoCheckBytes))
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\n",
			r.Name, r.InputScale, fmtBytes(r.BLCRBytes), fmtBytes(r.AutoCheckBytes), red)
	}
	w.Flush()
	return b.String()
}

// ---- §VI-B validation ----

// ValidationRow is one row of the validation summary.
type ValidationRow struct {
	Name           string
	Iterations     int64
	Sufficient     bool
	FalsePositives []string
	CkptBytes      int64
	SnapBytes      int64
}

// RunValidation reproduces §VI-B for every benchmark with the default
// storage setup (L1, file backend): fail-stop, restart, compare, and
// per-variable necessity.
func RunValidation(scratch string) ([]ValidationRow, error) {
	return RunValidationWith(scratch, validate.Options{})
}

// RunValidationWith is RunValidation with checkpoints persisted through
// the given backend configuration and reliability level.
func RunValidationWith(scratch string, opts validate.Options) ([]ValidationRow, error) {
	return RunValidationBenchmarks(scratch, opts, nil)
}

// RunValidationBenchmarks restricts RunValidationWith to the named
// benchmark ports (nil or empty means all 14 — the CLI's smoke modes
// validate a single port against a live checkpoint service).
func RunValidationBenchmarks(scratch string, opts validate.Options, names []string) ([]ValidationRow, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if progs.Get(n) == nil {
			return nil, fmt.Errorf("harness: unknown benchmark %q", n)
		}
		want[n] = true
	}
	var rows []ValidationRow
	for _, b := range progs.All() {
		if len(want) > 0 && !want[b.Name] {
			continue
		}
		p, err := Prepare(b, 0)
		if err != nil {
			return nil, err
		}
		res, err := p.Analyze(0)
		if err != nil {
			return nil, err
		}
		v, err := validate.NewWithOptions(p.Mod, res, fmt.Sprintf("%s/%s", scratch, b.Name), opts)
		if err != nil {
			return nil, err
		}
		rep, err := v.Run()
		if err != nil {
			return nil, err
		}
		row := ValidationRow{
			Name: b.Name, Iterations: rep.Iterations, Sufficient: rep.Sufficient,
			CkptBytes: rep.CheckpointBytes, SnapBytes: rep.FullSnapshotBytes,
		}
		for name, nec := range rep.Necessary {
			if !nec {
				row.FalsePositives = append(row.FalsePositives, name)
			}
		}
		sort.Strings(row.FalsePositives)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatValidation renders the validation summary.
func FormatValidation(rows []ValidationRow) string {
	var b strings.Builder
	b.WriteString("Validation (§VI-B): fail-stop + restart with detected variables\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Name\tIterations\tRestart OK\tFalse positives\tCkpt size\tFull snapshot")
	for _, r := range rows {
		fp := "none"
		if len(r.FalsePositives) > 0 {
			fp = strings.Join(r.FalsePositives, ", ")
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%s\t%s\t%s\n",
			r.Name, r.Iterations, r.Sufficient, fp, fmtBytes(r.CkptBytes), fmtBytes(r.SnapBytes))
	}
	w.Flush()
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}

package harness

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"autocheck/internal/store"
)

func TestChaosQuickSweepPasses(t *testing.T) {
	rep, err := RunChaosValidation(t.TempDir(), ChaosOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 {
		t.Fatalf("chaos sweep failed:\n%s", FormatChaos(rep))
	}
	if len(rep.Runs) == 0 {
		t.Fatal("sweep ran nothing")
	}
	fired := 0
	sawRecovered := false
	for _, r := range rep.Runs {
		fired += r.Events
		if r.Outcome == "recovered" {
			sawRecovered = true
		}
		if r.Outcome == "no-fire" {
			t.Errorf("%s/%s/%s: schedule never fired — dead coverage", r.Bench, r.Stack, r.Schedule)
		}
	}
	if fired == 0 {
		t.Fatal("no failpoint fired across the whole sweep")
	}
	if !sawRecovered {
		t.Error("no run actually died and recovered — the sweep is not exercising restart")
	}
	out := FormatChaos(rep)
	if !strings.Contains(out, "seed 1") {
		t.Errorf("report does not mention the sweep seed:\n%s", out)
	}
}

// TestChaosSweepIsReplayable: the same seed must reproduce the same
// outcomes and the same fired events (compared per run as sorted
// multisets: event ordering across concurrently-hit sites may
// interleave, but which failpoints fire, where, and on which hit is
// deterministic).
func TestChaosSweepIsReplayable(t *testing.T) {
	sweep := func() *ChaosReport {
		rep, err := RunChaosValidation(t.TempDir(), ChaosOptions{
			Seed: 42, Quick: true, Benchmarks: []string{"IS"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := sweep(), sweep()
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.Seed != rb.Seed || ra.Outcome != rb.Outcome || ra.OK != rb.OK {
			t.Errorf("run %s/%s/%s not reproducible: (%d,%s,%v) vs (%d,%s,%v)",
				ra.Bench, ra.Stack, ra.Schedule, ra.Seed, ra.Outcome, ra.OK, rb.Seed, rb.Outcome, rb.OK)
		}
		ea := append([]string(nil), ra.EventLog...)
		eb := append([]string(nil), rb.EventLog...)
		sort.Strings(ea)
		sort.Strings(eb)
		if !reflect.DeepEqual(ea, eb) {
			t.Errorf("run %s/%s/%s events differ:\n  %v\n  %v",
				ra.Bench, ra.Stack, ra.Schedule, ea, eb)
		}
	}
}

func TestChaosSingleCombination(t *testing.T) {
	// The replay shape the report prints: one benchmark, one stack, one
	// schedule.
	rep, err := RunChaosValidation(t.TempDir(), ChaosOptions{
		Seed:       7,
		Benchmarks: []string{"IS"},
		Stacks:     []string{"file+incr"},
		Schedules:  []string{"torn-write"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(rep.Runs))
	}
	r := rep.Runs[0]
	if !r.OK || r.Events == 0 {
		t.Fatalf("torn-write on file+incr: %+v", r)
	}
	if r.Replay(rep.Seed) != "autocheck chaos -seed 7 -benchmark IS -stack file+incr -schedule torn-write" {
		t.Errorf("replay line = %q", r.Replay(rep.Seed))
	}
}

func TestChaosRejectsUnknownInputs(t *testing.T) {
	if _, err := RunChaosValidation(t.TempDir(), ChaosOptions{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunChaosValidation(t.TempDir(), ChaosOptions{
		Benchmarks: []string{"IS"}, Stacks: []string{"file+warp"},
	}); err == nil {
		t.Error("unknown stack layer accepted")
	}
	if _, err := RunChaosValidation(t.TempDir(), ChaosOptions{
		Benchmarks: []string{"IS"}, Schedules: []string{"nope"},
	}); err == nil {
		t.Error("unknown schedule accepted")
	}
}

func TestChaosStackConfigs(t *testing.T) {
	for _, stack := range ChaosStacks() {
		if _, _, _, err := chaosStackConfig(stack, t.TempDir()); err != nil {
			t.Errorf("stack %q: %v", stack, err)
		}
	}
	cfg, level, services, err := chaosStackConfig("remote+cached", "/x")
	if err != nil || services != 1 || cfg.CacheMB == 0 || level.String() != "L1" {
		t.Errorf("remote+cached parsed to %+v level=%v services=%d err=%v", cfg, level, services, err)
	}
	if _, level, _, err := chaosStackConfig("file+l2", "/x"); err != nil || level.String() != "L2" {
		t.Errorf("file+l2 level = %v (%v)", level, err)
	}
	cfg, _, services, err = chaosStackConfig("replicated", "/x")
	if err != nil || services != 3 || cfg.Kind != store.KindReplicated || cfg.HedgeAfter <= 0 {
		t.Errorf("replicated parsed to %+v services=%d err=%v", cfg, services, err)
	}
	if _, _, services, err := chaosStackConfig("file", "/x"); err != nil || services != 0 {
		t.Errorf("file needs %d services (%v), want 0", services, err)
	}
}

// TestChaosReplicatedCluster is the multi-node matrix of the sweep: every
// replica-targeted schedule against the replicated stacks, each run a
// 3-node cluster with one node killed, partitioned, slowed, or scrubbed
// to death — restarts must verify byte-identically from the survivors.
func TestChaosReplicatedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos matrix is not -short")
	}
	rep, err := RunChaosValidation(t.TempDir(), ChaosOptions{
		Benchmarks: []string{"IS"},
		Stacks:     []string{"replicated", "replicated+cached"},
		Schedules: []string{
			"replica-kill-mid-put", "replica-partition",
			"replica-slow-hedge", "replica-kill-scrub",
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 8 {
		t.Fatalf("matrix ran %d combinations, want 8", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if !r.OK {
			t.Errorf("%s/%s/%s failed: %s\n  replay: %s", r.Bench, r.Stack, r.Schedule, r.Detail, r.Replay(rep.Seed))
		}
		if r.Events == 0 {
			t.Errorf("%s/%s/%s: schedule never fired — dead coverage", r.Bench, r.Stack, r.Schedule)
		}
	}
}

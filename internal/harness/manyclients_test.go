package harness

import (
	"context"
	"net/http/httptest"
	"testing"

	"autocheck/internal/checkpoint"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

// The many-clients scenario must hold whatever the storage kind: every
// client's checkpoints land, every client's restart recovers, and the
// per-client runs match a serial single-client run of the same
// benchmark (same checkpoint count per client).
func TestRunManyClientsAcrossBackends(t *testing.T) {
	svc := server.NewWithFactory(server.Config{}, func(ns string) (store.Backend, error) {
		return store.NewMemory(), nil
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	single, err := RunManyClients("IS", 0, store.Config{Kind: store.KindMemory}, checkpoint.L1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Checkpoints == 0 || single.RestartsOK != 1 {
		t.Fatalf("single-client baseline: %+v", single)
	}
	perClient := single.Checkpoints

	for name, tmpl := range map[string]store.Config{
		"memory":        {Kind: store.KindMemory},
		"file":          {Kind: store.KindFile, Dir: t.TempDir()},
		"remote":        {Kind: store.KindRemote, Addr: ts.URL, Dir: "mc"},
		"remote-cached": {Kind: store.KindRemote, Addr: ts.URL, Dir: "mc", CacheMB: 8},
	} {
		t.Run(name, func(t *testing.T) {
			const clients = 3
			run, err := RunManyClients("IS", 0, tmpl, checkpoint.L1, clients)
			if err != nil {
				t.Fatal(err)
			}
			if run.Clients != clients || run.RestartsOK != clients {
				t.Errorf("restarts %d/%d ok", run.RestartsOK, run.Clients)
			}
			if run.Checkpoints != clients*perClient {
				t.Errorf("checkpoints = %d, want %d (= %d clients x %d)",
					run.Checkpoints, clients*perClient, clients, perClient)
			}
			if run.BytesWritten <= 0 || run.CkptsPerSec <= 0 {
				t.Errorf("accounting: %+v", run)
			}
			if FormatManyClients(run) == "" {
				t.Error("empty formatting")
			}
		})
	}
	// The shared service saw every remote client's traffic in its own
	// namespace: 2 scenarios x 3 clients = 6 namespaces minimum.
	if rep := svc.Stats(); rep.Namespaces < 6 || rep.Store.Puts == 0 {
		t.Errorf("service stats = %+v", rep)
	}
}

func TestRunManyClientsUnknownBenchmark(t *testing.T) {
	if _, err := RunManyClients("nope", 0, store.Config{Kind: store.KindMemory}, checkpoint.L1, 2); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

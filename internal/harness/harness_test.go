package harness

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"autocheck/internal/analysis"
	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/progs"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

func TestTable2(t *testing.T) {
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("Table II has %d rows, want 14", len(rows))
	}
	for _, r := range rows {
		if len(r.Critical) == 0 {
			t.Errorf("%s: no critical variables", r.Name)
		}
		if r.TraceBytes <= 0 || r.GenTime <= 0 {
			t.Errorf("%s: missing trace metrics: %+v", r.Name, r)
		}
	}
	out := FormatTable2(rows)
	for _, want := range []string{"Himeno", "HACC", "p (WAR)", "it (Index)", "MCLR"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted Table II missing %q", want)
		}
	}
}

func TestTable3(t *testing.T) {
	rows, err := RunTable3(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("Table III has %d rows, want 14", len(rows))
	}
	for _, r := range rows {
		if r.TotalSerial <= 0 || r.TotalPar <= 0 {
			t.Errorf("%s: missing totals: %+v", r.Name, r)
		}
		if r.PreSerial <= 0 {
			t.Errorf("%s: missing pre-processing time", r.Name)
		}
	}
	out := FormatTable3(rows, 8)
	if !strings.Contains(out, "8 workers") {
		t.Error("formatted Table III missing worker count")
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	rows, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("Table IV has %d rows, want 14", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: AutoCheck's variable checkpoints are far
		// smaller than full-process images, on every benchmark.
		if r.AutoCheckBytes <= 0 || r.BLCRBytes <= 0 {
			t.Errorf("%s: missing sizes: %+v", r.Name, r)
			continue
		}
		if r.AutoCheckBytes >= r.BLCRBytes {
			t.Errorf("%s: AutoCheck checkpoint (%d B) not smaller than BLCR-like image (%d B)",
				r.Name, r.AutoCheckBytes, r.BLCRBytes)
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "Reduction") {
		t.Error("formatted Table IV missing reduction column")
	}
}

func TestValidationSummary(t *testing.T) {
	rows, err := RunValidation(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("validation has %d rows, want 14", len(rows))
	}
	for _, r := range rows {
		if !r.Sufficient {
			t.Errorf("%s: restart failed", r.Name)
		}
		if len(r.FalsePositives) != 0 {
			t.Errorf("%s: false positives %v", r.Name, r.FalsePositives)
		}
	}
	out := FormatValidation(rows)
	if !strings.Contains(out, "Restart OK") {
		t.Error("formatted validation missing header")
	}
}

// TestStorageRunIncrementalReduction pins the acceptance claim of the
// store subsystem: on IS (whose key_array changes only two elements per
// iteration), incremental checkpoints persist no more bytes than full
// critical-set images, with identical restart behavior.
func TestStorageRunIncrementalReduction(t *testing.T) {
	p, err := Prepare(progs.Get("IS"), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MeasureStorageRun(p.Mod, res, store.Config{Kind: store.KindMemory}, checkpoint.L1, true)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := MeasureStorageRun(p.Mod, res,
		store.Config{Kind: store.KindMemory, Incremental: true, Keyframe: 8}, checkpoint.L1, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Checkpoints == 0 || plain.Checkpoints != inc.Checkpoints {
		t.Fatalf("checkpoints: plain=%d inc=%d", plain.Checkpoints, inc.Checkpoints)
	}
	if inc.PersistedBytes > plain.PersistedBytes {
		t.Errorf("incremental persisted %d B > full critical-set %d B",
			inc.PersistedBytes, plain.PersistedBytes)
	}
	if plain.SnapshotBytes <= plain.LogicalBytes {
		t.Errorf("full snapshots (%d B) should dwarf critical-set images (%d B)",
			plain.SnapshotBytes, plain.LogicalBytes)
	}
	if plain.RestartIter != inc.RestartIter || inc.RestartIter != int64(inc.Checkpoints) {
		t.Errorf("restart iter: plain=%d inc=%d want %d", plain.RestartIter, inc.RestartIter, inc.Checkpoints)
	}
	if inc.Keyframes == 0 || inc.Deltas == 0 {
		t.Errorf("incremental accounting: keyframes=%d deltas=%d", inc.Keyframes, inc.Deltas)
	}
}

// The storage run must behave identically through the async and sharded
// write paths (same images, same restart point).
func TestStorageRunBackendEquivalence(t *testing.T) {
	p, err := Prepare(progs.Get("CG"), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MeasureStorageRun(p.Mod, res, store.Config{Kind: store.KindMemory}, checkpoint.L1, false)
	if err != nil {
		t.Fatal(err)
	}
	for name, scfg := range map[string]store.Config{
		"file":         {Kind: store.KindFile, Dir: t.TempDir()},
		"sharded":      {Kind: store.KindSharded, Dir: t.TempDir(), Workers: 3},
		"memory-async": {Kind: store.KindMemory, Async: true},
	} {
		got, err := MeasureStorageRun(p.Mod, res, scfg, checkpoint.L1, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Checkpoints != ref.Checkpoints || got.LogicalBytes != ref.LogicalBytes ||
			got.RestartIter != ref.RestartIter {
			t.Errorf("%s: run diverged: %+v vs %+v", name, got, ref)
		}
	}
}

func TestPrepareUnknownScaleUsesDefault(t *testing.T) {
	b := progs.Get("CG")
	p, err := Prepare(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) == 0 || len(p.Data) == 0 {
		t.Error("Prepare produced empty trace")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[int64]string{
		500:     "500 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(250 * time.Microsecond); got != "250µs" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(3 * time.Millisecond); got != "3.00ms" {
		t.Errorf("fmtDur = %q", got)
	}
}

// TestFormatEquivalenceAllBenchmarks pins the tentpole invariant on every
// Table II port: the critical-variable report is byte-identical for every
// engine adapter — materialized (text serial and parallel, binary),
// streaming over both encodings, the single-sweep online engine, and the
// networked ingest service (one-shot, chunked sessions, and a chunked
// session that survives a mid-stream service kill and resumes on a
// replacement instance over the same store).
func TestFormatEquivalenceAllBenchmarks(t *testing.T) {
	isvc, its := newEquivalenceService(t)
	defer its.Close()
	defer isvc.Shutdown(context.Background())
	cli, err := analysis.NewClient(its.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := Prepare(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			if r := float64(len(p.BinData())) / float64(len(p.Data)); r > 0.7 {
				t.Errorf("binary trace is %.0f%% of text, want <= 70%%", 100*r)
			}
			want, err := p.Analyze(0)
			if err != nil {
				t.Fatal(err)
			}
			wantReport := criticalReport(want)
			paths := map[string]func() (*core.Result, error){
				"text-parallel":    func() (*core.Result, error) { return p.Analyze(8) },
				"binary":           p.AnalyzeBinary,
				"text-streaming":   func() (*core.Result, error) { return p.AnalyzeData(p.Data, 0, true) },
				"binary-streaming": func() (*core.Result, error) { return p.AnalyzeData(p.BinData(), 0, true) },
				"online":           p.AnalyzeOnline,
				"service-oneshot": func() (*core.Result, error) {
					return cli.Analyze(p.BinData(), p.Spec)
				},
				"service-chunked": func() (*core.Result, error) {
					return cli.AnalyzeChunked(p.BinData(), p.Spec, len(p.BinData())/7+1)
				},
				"service-reconnect": func() (*core.Result, error) {
					return analyzeServiceReconnect(p)
				},
			}
			for label, run := range paths {
				got, err := run()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if rep := criticalReport(got); rep != wantReport {
					t.Errorf("%s report differs:\nwant %s\ngot  %s", label, wantReport, rep)
				}
				if got.Stats.Records != want.Stats.Records ||
					got.Stats.RegionA != want.Stats.RegionA ||
					got.Stats.RegionB != want.Stats.RegionB ||
					got.Stats.RegionC != want.Stats.RegionC {
					t.Errorf("%s region stats differ: want %+v got %+v", label, want.Stats, got.Stats)
				}
			}
		})
	}
}

// TestAnalyzeManyEquivalenceAllBenchmarks extends the invariant to the
// parallel adapter: core.AnalyzeMany over all 14 ports — in both trace
// encodings, at several pool sizes — produces the same byte-identical
// reports as per-port serial analysis.
func TestAnalyzeManyEquivalenceAllBenchmarks(t *testing.T) {
	var preps []*Prepared
	var want []string
	for _, b := range progs.All() {
		p, err := Prepare(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Analyze(0)
		if err != nil {
			t.Fatal(err)
		}
		preps = append(preps, p)
		want = append(want, criticalReport(res))
	}
	encodings := map[string]func(p *Prepared) core.Input{
		"records": func(p *Prepared) core.Input { return p.Input() },
		"text": func(p *Prepared) core.Input {
			in := p.Input()
			in.Records, in.Data = nil, p.Data
			return in
		},
		"binary": func(p *Prepared) core.Input {
			in := p.Input()
			in.Records, in.Data = nil, p.BinData()
			return in
		},
	}
	for label, mk := range encodings {
		inputs := make([]core.Input, len(preps))
		for i, p := range preps {
			inputs[i] = mk(p)
		}
		for _, workers := range []int{1, 4, 8} {
			results, err := core.AnalyzeMany(inputs, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", label, workers, err)
			}
			for i, res := range results {
				if rep := criticalReport(res); rep != want[i] {
					t.Errorf("%s workers=%d %s report differs:\nwant %s\ngot  %s",
						label, workers, preps[i].Bench.Name, want[i], rep)
				}
			}
		}
	}
}

// TestRunTable2ParallelMatchesSerial: the parallel Table II pipeline
// produces the same rows as the serial one (timings aside).
func TestRunTable2ParallelMatchesSerial(t *testing.T) {
	serial, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTable2Parallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel has %d rows, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		s.GenTime, p.GenTime = 0, 0
		if !reflect.DeepEqual(s, p) {
			t.Errorf("row %d differs:\nserial   %+v\nparallel %+v", i, s, p)
		}
	}
}

// newEquivalenceService mounts an ingest-enabled server over private
// in-memory backends for the service equivalence adapters.
func newEquivalenceService(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	svc := server.NewWithFactory(
		server.Config{Ingest: &analysis.Config{SweepEvery: -1}},
		func(string) (store.Backend, error) { return store.NewMemory(), nil })
	return svc, httptest.NewServer(svc.Handler())
}

// keepAliveBackend keeps a shared in-memory backend usable across a
// server "kill": Close is a no-op, so a replacement instance reopening
// the namespace sees everything the dead one acknowledged.
type keepAliveBackend struct{ store.Backend }

func (keepAliveBackend) Close() error { return nil }

// analyzeServiceReconnect streams a chunked session, kills the service
// after three chunks with no goodbye, brings up a replacement over the
// same store, and resumes the same session to completion — the adapter
// that proves the resume protocol preserves byte-identical results.
func analyzeServiceReconnect(p *Prepared) (*core.Result, error) {
	var mu sync.Mutex
	backs := map[string]store.Backend{}
	open := func(ns string) (store.Backend, error) {
		mu.Lock()
		defer mu.Unlock()
		b, ok := backs[ns]
		if !ok {
			b = store.NewMemory()
			backs[ns] = b
		}
		return keepAliveBackend{b}, nil
	}
	newSrv := func() (*server.Server, *httptest.Server) {
		s := server.NewWithFactory(server.Config{Ingest: &analysis.Config{SweepEvery: -1}}, open)
		return s, httptest.NewServer(s.Handler())
	}

	srvA, tsA := newSrv()
	defer srvA.Shutdown(context.Background())
	cli, err := analysis.NewClient(tsA.URL)
	if err != nil {
		return nil, err
	}
	cli.Backoff = 2 * time.Millisecond
	sess, err := cli.NewSession(p.Spec)
	if err != nil {
		return nil, err
	}
	bin := p.BinData()
	chunkBytes := len(bin)/6 + 1
	seq := 0
	for ; seq < 3 && seq*chunkBytes < len(bin); seq++ {
		lo := seq * chunkBytes
		hi := min(lo+chunkBytes, len(bin))
		if err := sess.SendChunk(seq, bin[lo:hi]); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", seq, err)
		}
	}
	tsA.CloseClientConnections()
	tsA.Close()

	srvB, tsB := newSrv()
	defer tsB.Close()
	defer srvB.Shutdown(context.Background())
	if err := cli.SetAddr(tsB.URL); err != nil {
		return nil, err
	}
	// The status probe triggers service-side recovery and reports the
	// acknowledged resume point.
	st, err := sess.Status()
	if err != nil {
		return nil, fmt.Errorf("post-kill status: %w", err)
	}
	for seq = st.NextSeq; seq*chunkBytes < len(bin); seq++ {
		lo := seq * chunkBytes
		hi := min(lo+chunkBytes, len(bin))
		if err := sess.SendChunk(seq, bin[lo:hi]); err != nil {
			return nil, fmt.Errorf("resumed chunk %d: %w", seq, err)
		}
	}
	return sess.Finish()
}

// criticalReport renders the parts of a result Table II reports, in a
// stable byte form.
func criticalReport(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.Critical {
		fmt.Fprintf(&sb, "%s/%s@%x:%d (%s); ", c.Fn, c.Name, c.Base, c.SizeBytes, c.Type)
	}
	for _, v := range res.MLI {
		fmt.Fprintf(&sb, "mli %s/%s@%x:%d; ", v.Fn, v.Name, v.Base, v.SizeBytes)
	}
	return sb.String()
}

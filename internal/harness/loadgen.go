package harness

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/store"
)

// LoadgenConfig parameterizes RunLoadgen, the multi-tenant scaling
// harness: Clients simulated checkpointing clients spread round-robin
// across Tenants namespaces (tenant-00, tenant-01, ...), each running a
// seeded stream of checkpoint Puts (interactive admission class) and
// restart-path Gets (restart class) against a live service, so the
// admission controller's fairness and shed behavior can be observed at
// scale.
type LoadgenConfig struct {
	// Addr is the checkpoint service to load (host:port or URL).
	Addr string

	// Tenants is the namespace count; Clients are assigned round-robin.
	// Defaults: 4 tenants, 16 clients, 100 ops per client.
	Tenants int
	Clients int
	Ops     int

	// Seed roots every client's deterministic stream: client i draws
	// keys, op mix, and think times from Seed+i, and its fault schedule
	// (when set) is armed with the same per-client seed.
	Seed int64

	// PutMix is the fraction of operations that are Puts; the remainder
	// are Gets of keys the client already wrote. This is also the
	// priority mix: Puts admit as interactive, Gets ride the restart
	// class. Default 0.7.
	PutMix float64

	// ValueBytes sizes each checkpoint payload (default 4 KiB).
	ValueBytes int

	// Think, when positive, is the mean of an exponential pause drawn
	// before each operation — a Poisson-ish arrival process per client
	// instead of a closed tight loop.
	Think time.Duration

	// Schedule, when non-empty, is a faultinject schedule armed on each
	// client's own registry (seeded Seed+i), injecting client-side
	// failures like "store.remote.do=error@p=0.05" so the retry and
	// Retry-After machinery is exercised deterministically.
	Schedule string

	// FailFast makes each operation's retry budget short (3 attempts,
	// 2s wall-clock) so an overloaded service surfaces as recorded
	// failures instead of minutes of backoff.
	FailFast bool
}

// TenantLoad is one tenant's aggregate outcome across all of its
// clients: throughput, failure count, and latency percentiles over
// every operation (retries and waits included in each sample).
type TenantLoad struct {
	Tenant    string
	Clients   int
	Ops       int
	Failures  int
	Bytes     int64
	OpsPerSec float64
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
}

// LoadgenRun is one RunLoadgen invocation's result.
type LoadgenRun struct {
	Clients  int
	Elapsed  time.Duration
	Ops      int
	Failures int
	Tenants  []TenantLoad
}

// TenantName formats tenant index i the way loadgen namespaces it.
func TenantName(i int) string { return fmt.Sprintf("tenant-%02d", i) }

// RunLoadgen drives the configured synthetic load and aggregates the
// outcome per tenant. Every client failure is recorded, never fatal:
// shed storms and injected faults are the point of the exercise.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenRun, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("harness: loadgen needs a service address")
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 100
	}
	if cfg.PutMix <= 0 || cfg.PutMix > 1 {
		cfg.PutMix = 0.7
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 4 << 10
	}
	if cfg.Schedule != "" {
		// Validate once up front so a typo fails the run, not silently
		// every client.
		if err := faultinject.NewRegistry(cfg.Seed).ArmSchedule(cfg.Schedule); err != nil {
			return nil, fmt.Errorf("harness: loadgen schedule: %w", err)
		}
	}

	type clientResult struct {
		tenant   int
		ops      int
		failures int
		bytes    int64
		lats     []time.Duration
	}
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := i % cfg.Tenants
			res := clientResult{tenant: tenant, lats: make([]time.Duration, 0, cfg.Ops)}
			defer func() { results[i] = res }()
			r, err := store.NewRemote(cfg.Addr, TenantName(tenant))
			if err != nil {
				res.failures = cfg.Ops
				return
			}
			defer r.Close()
			if cfg.FailFast {
				r.MaxAttempts = 3
				r.MaxElapsed = 2 * time.Second
			}
			if cfg.Schedule != "" {
				freg := faultinject.NewRegistry(cfg.Seed + int64(i))
				if err := freg.ArmSchedule(cfg.Schedule); err == nil {
					r.SetFaults(freg)
				}
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			payload := make([]byte, cfg.ValueBytes)
			rng.Read(payload)
			secs := []store.Section{{Name: "data", Data: payload}}
			written := 0
			for op := 0; op < cfg.Ops; op++ {
				if cfg.Think > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(cfg.Think)))
				}
				t0 := time.Now()
				var oerr error
				if written == 0 || rng.Float64() < cfg.PutMix {
					oerr = r.Put(fmt.Sprintf("lg-%03d-%05d", i, written), secs)
					if oerr == nil {
						written++
						res.bytes += int64(cfg.ValueBytes)
					}
				} else {
					_, oerr = r.Get(fmt.Sprintf("lg-%03d-%05d", i, rng.Intn(written)))
					if oerr == nil {
						res.bytes += int64(cfg.ValueBytes)
					}
				}
				res.lats = append(res.lats, time.Since(t0))
				res.ops++
				if oerr != nil {
					res.failures++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	run := &LoadgenRun{Clients: cfg.Clients, Elapsed: elapsed}
	perTenant := make([][]time.Duration, cfg.Tenants)
	loads := make([]TenantLoad, cfg.Tenants)
	for i := range loads {
		loads[i].Tenant = TenantName(i)
	}
	for _, res := range results {
		tl := &loads[res.tenant]
		tl.Clients++
		tl.Ops += res.ops
		tl.Failures += res.failures
		tl.Bytes += res.bytes
		perTenant[res.tenant] = append(perTenant[res.tenant], res.lats...)
		run.Ops += res.ops
		run.Failures += res.failures
	}
	for i := range loads {
		lats := perTenant[i]
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		loads[i].P50 = percentileDur(lats, 0.50)
		loads[i].P95 = percentileDur(lats, 0.95)
		loads[i].P99 = percentileDur(lats, 0.99)
		if secs := elapsed.Seconds(); secs > 0 {
			loads[i].OpsPerSec = float64(loads[i].Ops-loads[i].Failures) / secs
		}
	}
	run.Tenants = loads
	return run, nil
}

// percentileDur reads the q-th percentile of an ascending-sorted slice
// (nearest-rank).
func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FormatLoadgen renders a run as an aligned per-tenant table.
func FormatLoadgen(r *LoadgenRun) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loadgen: %d clients, %d ops (%d failed) in %s\n",
		r.Clients, r.Ops, r.Failures, fmtDur(r.Elapsed))
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tenant\tclients\tops\tfail\tops/s\tp50\tp95\tp99\tdata")
	for _, tl := range r.Tenants {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%s\t%s\t%s\t%s\n",
			tl.Tenant, tl.Clients, tl.Ops, tl.Failures, tl.OpsPerSec,
			fmtDur(tl.P50), fmtDur(tl.P95), fmtDur(tl.P99), fmtBytes(tl.Bytes))
	}
	w.Flush()
	return sb.String()
}

// Package autocheck is the public API of the AutoCheck reproduction: a
// tool that automatically identifies the critical variables an HPC
// application must checkpoint to restart correctly after a fail-stop
// failure (Fu et al., "AutoCheck: Automatically Identifying Variables for
// Checkpointing by Data Dependency Analysis", SC 2024).
//
// The pipeline mirrors the paper's Fig. 2. Given a dynamic instruction
// execution trace and the location of the main computation loop:
//
//  1. pre-processing identifies the Main-Loop-Input (MLI) variables —
//     variables defined before but used inside the loop;
//  2. data dependency analysis tracks the reg-var and reg-reg maps
//     on-the-fly and builds a contracted data dependency graph over the
//     MLI variables;
//  3. identification classifies critical variables as Write-After-Read,
//     Read-After-Partially-Overwritten, or Outcome, and adds the outermost
//     loop's induction variable (Index).
//
// Because the original toolchain (LLVM/Clang + LLVM-Tracer + FTI + BLCR)
// is not available to a pure-Go build, the module also contains the full
// substrate: a mini-C frontend and IR (internal/minic, internal/ir,
// internal/lower), a tracing interpreter that plays LLVM-Tracer's role
// (internal/interp), loop analysis (internal/cfg), an FTI-like C/R library
// with a BLCR-like full-snapshot baseline (internal/checkpoint), the
// fail-stop validation harness (internal/validate), and mini-C ports of
// the paper's 14 benchmarks (internal/progs).
//
// Quick start:
//
//	mod, _ := autocheck.CompileProgram(src)
//	recs, _, _ := autocheck.TraceProgram(mod)
//	res, _ := autocheck.Analyze(recs, autocheck.LoopSpec{
//	    Function: "main", StartLine: 17, EndLine: 25,
//	}, autocheck.DefaultOptions())
//	for _, c := range res.Critical {
//	    fmt.Printf("checkpoint %s (%s)\n", c.Name, c.Type)
//	}
package autocheck

import (
	"io"

	"autocheck/internal/core"
	"autocheck/internal/interp"
	"autocheck/internal/ir"
	"autocheck/internal/trace"
)

// Re-exported core types; see the core package for field documentation.
type (
	// LoopSpec locates the main computation loop (function + line range).
	LoopSpec = core.LoopSpec
	// Options tunes the analysis (parallel workers, DDG construction, ...).
	Options = core.Options
	// Result is the analysis output: MLI variables, critical variables,
	// timing breakdown, and optional DDGs.
	Result = core.Result
	// CriticalVar is one variable to checkpoint.
	CriticalVar = core.CriticalVar
	// Provenance explains one variable's classification decision (set in
	// Result.Provenance with Options.Explain).
	Provenance = core.Provenance
	// NoLoopError reports a LoopSpec that matched nothing in the trace
	// (function, line range, and records scanned are in the message).
	NoLoopError = core.NoLoopError
	// DependencyType classifies why a variable is critical.
	DependencyType = core.DependencyType
	// Record is one dynamic trace instruction block.
	Record = trace.Record
	// Module is a compiled program.
	Module = ir.Module
	// RecordWriter is a trace encoder sink (text or binary); see
	// NewTraceWriter.
	RecordWriter = trace.RecordWriter
	// TraceReader is a streaming trace decoder (text or binary); see
	// NewTraceReader.
	TraceReader = trace.Reader
	// TraceFormat selects a trace encoding (TextFormat or BinaryFormat).
	TraceFormat = trace.Format
)

// Trace encodings.
const (
	TextFormat   = trace.FormatText
	BinaryFormat = trace.FormatBinary
)

// NewTraceWriter returns a trace encoder in the chosen format over w,
// usable as the sink of TraceProgramTo.
func NewTraceWriter(w io.Writer, f TraceFormat) RecordWriter {
	return trace.NewRecordWriter(w, f)
}

// NewTraceReader sniffs the stream's encoding and returns a streaming
// record reader for it, usable as the source of AnalyzeStream.
func NewTraceReader(r io.Reader) (TraceReader, TraceFormat, error) {
	return trace.NewAutoReader(r)
}

// Dependency types (paper §IV-C, Fig. 7).
const (
	WAR     = core.WAR
	Outcome = core.Outcome
	RAPO    = core.RAPO
	Index   = core.Index
)

// DefaultOptions returns the recommended analysis configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Analyze runs the three-module AutoCheck pipeline over parsed trace
// records.
func Analyze(recs []Record, spec LoopSpec, opts Options) (*Result, error) {
	return core.Analyze(recs, spec, opts)
}

// AnalyzeBytes parses an in-memory trace of either format (textual traces
// decode in parallel when opts.Workers > 1; opts.Streaming avoids
// materializing records at all) and analyzes it.
func AnalyzeBytes(data []byte, spec LoopSpec, opts Options) (*Result, error) {
	return core.AnalyzeBytes(data, spec, opts)
}

// AnalyzeFile reads and analyzes a trace file (the paper's primary usage
// mode: trace generation and analysis as separate steps).
func AnalyzeFile(path string, spec LoopSpec, opts Options) (*Result, error) {
	return core.AnalyzeFile(path, spec, opts)
}

// Engine is the single incremental analysis core every mode adapts to:
// feed it records one at a time via Observe and call Finish for the
// Result. Analyze/AnalyzeStream run the same passes through a bounded
// multi-sweep schedule; the Engine itself is the single-sweep (online)
// configuration.
type Engine = core.Engine

// NewEngine prepares a single-sweep analysis session.
func NewEngine(spec LoopSpec, opts Options) (*Engine, error) {
	return core.NewEngine(spec, opts)
}

// Collector is the Engine under its historical name — the online
// (single-pass, no trace file) analyzer of the paper's §IX future-work
// mode, where AutoCheck runs inside the instrumentation itself.
type Collector = core.Collector

// NewCollector prepares an online analysis session; feed it records via
// Observe (e.g. as an interpreter Tracer callback) and call Finish.
func NewCollector(spec LoopSpec, opts Options) (*Collector, error) {
	return core.NewCollector(spec, opts)
}

// AnalyzeProgramOnline executes a module with the engine wired directly
// into the tracer: no trace is materialized, encoded, or parsed. It
// returns the analysis result and the program's printed output.
func AnalyzeProgramOnline(mod *Module, spec LoopSpec, opts Options) (*Result, string, error) {
	eng, err := core.NewEngine(spec, opts)
	if err != nil {
		return nil, "", err
	}
	out, err := interp.TraceProgramInto(mod, eng)
	if err != nil {
		return nil, out, err
	}
	res, err := eng.Finish()
	return res, out, err
}

// AnalysisInput names one independent trace for AnalyzeMany: a spec plus
// exactly one source (Records, Open, Data, or Path).
type AnalysisInput = core.Input

// AnalyzeMany analyzes independent traces concurrently, one engine per
// trace, with at most workers engines in flight (<= 0 means GOMAXPROCS).
// Results are positional; per-input failures leave a nil slot and are
// joined into the returned error.
func AnalyzeMany(inputs []AnalysisInput, workers int) ([]*Result, error) {
	return core.AnalyzeMany(inputs, workers)
}

// CompileProgram compiles a mini-C source program to IR.
func CompileProgram(src string) (*Module, error) { return interp.Compile(src) }

// TraceProgram executes a module and returns its dynamic instruction
// execution trace and printed output (the LLVM-Tracer role).
func TraceProgram(mod *Module) ([]Record, string, error) { return interp.TraceProgram(mod) }

// RunProgram executes a module without tracing.
func RunProgram(mod *Module) (string, error) { return interp.RunProgram(mod) }

// EncodeTrace renders records in the textual LLVM-Tracer-style block
// format; ParseTrace reads it back.
func EncodeTrace(recs []Record) []byte { return trace.EncodeAll(recs) }

// EncodeTraceBinary renders records in the compact binary trace format
// (magic "ACTB": varint fields plus an interned string table), typically
// 2-3x smaller and several times faster to parse than the text format.
func EncodeTraceBinary(recs []Record) []byte { return trace.EncodeBinary(recs) }

// ParseTrace parses an in-memory trace of either format, detected by its
// magic bytes.
func ParseTrace(data []byte) ([]Record, error) { return trace.ParseBytes(data) }

// TraceProgramBinary executes a module with the tracer emitting the
// compact binary encoding directly: no []Record is materialized.
func TraceProgramBinary(mod *Module) ([]byte, string, error) {
	return interp.TraceProgramBinary(mod)
}

// TraceProgramTo executes a module with the tracer streaming into any
// trace encoder (see NewTraceWriter).
func TraceProgramTo(mod *Module, w RecordWriter) (string, error) {
	return interp.TraceProgramTo(mod, w)
}

// AnalyzeStream runs the pipeline over a replayable record stream in
// three bounded passes without materializing the trace; open is called
// once per pass (see NewTraceReader for building readers). Results are
// identical to Analyze.
func AnalyzeStream(open func() (TraceReader, error), spec LoopSpec, opts Options) (*Result, error) {
	return core.AnalyzeStream(open, spec, opts)
}

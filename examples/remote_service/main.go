// Networked checkpoint service demo: start the internal/server
// checkpoint service on a loopback port over a file-backed store, run
// several concurrent clients — each its own checkpoint.Context,
// checkpointing the AutoCheck-critical variables of the IS port through
// store.Remote into its own service namespace — then compare the
// restart read path with and without the read-through cache tier, and
// finish with the service's aggregate accounting and a graceful
// shutdown.
//
//	go run ./examples/remote_service
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"autocheck"
	"autocheck/internal/checkpoint"
	"autocheck/internal/harness"
	"autocheck/internal/interp"
	"autocheck/internal/server"
	"autocheck/internal/store"
	"autocheck/internal/trace"
)

func main() {
	root, err := os.MkdirTemp("", "autocheck-remote-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// 1. The service: one backend per client namespace under root.
	svc, err := server.New(server.Config{
		Store: store.Config{Kind: store.KindFile, Dir: root},
	})
	if err != nil {
		log.Fatal(err)
	}
	ready := make(chan string, 1)
	go func() {
		if err := svc.ListenAndServe("127.0.0.1:0", ready); err != nil {
			log.Fatal(err)
		}
	}()
	addr := <-ready
	fmt.Printf("checkpoint service on %s, storing under %s\n\n", addr, root)

	// 2. Many clients, one service: each client checkpoints IS's
	// critical variables at every main-loop boundary and verifies its
	// own restart.
	for _, clients := range []int{1, 4} {
		run, err := harness.RunManyClients("IS", 0,
			store.Config{Kind: store.KindRemote, Addr: addr, Dir: "demo"},
			checkpoint.L1, clients)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(harness.FormatManyClients(run))
	}

	// 3. The cache tier: repeated restarts re-read the same newest
	// checkpoint. Uncached, every restart is a network round trip per
	// object; cached, it is a local decode after the first read.
	fmt.Println("\nrestart latency, 50 restarts from the same checkpoint:")
	mod, err := autocheck.CompileProgram(`int main() { return 0; }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		cacheMB int
	}{
		{"uncached", 0},
		{"cached (64 MB)", 64},
	} {
		cfg := store.Config{Kind: store.KindRemote, Addr: addr,
			Dir: "restart-" + tc.name, CacheMB: tc.cacheMB}
		ctx, err := checkpoint.NewContextStore(cfg, checkpoint.L1)
		if err != nil {
			log.Fatal(err)
		}
		m := interp.New(mod)
		cells := make([]trace.Value, 512)
		for i := range cells {
			cells[i] = trace.IntValue(int64(i))
		}
		m.WriteRange(0x1000, cells)
		ctx.Protect("state", 0x1000, int64(len(cells)*8))
		for i := 1; i <= 8; i++ {
			if err := ctx.Checkpoint(m, int64(i)); err != nil {
				log.Fatal(err)
			}
		}
		m2 := interp.New(mod)
		t0 := time.Now()
		for i := 0; i < 50; i++ {
			if _, err := ctx.Restart(m2, nil); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(t0)
		st := ctx.StoreStats()
		fmt.Printf("  %-16s %8s total  (%6s/restart)  cache: %d hits, %d misses\n",
			tc.name, elapsed.Round(10*time.Microsecond),
			(elapsed / 50).Round(time.Microsecond), st.CacheHits, st.CacheMisses)
		ctx.Close()
	}

	// 4. The service's view of all that traffic, then a graceful stop.
	rep := svc.Stats()
	fmt.Printf("\nservice totals: %d requests (%d shed) across %d namespaces, "+
		"%d puts / %d gets, %d B written\n",
		rep.Requests, rep.Rejected, rep.Namespaces,
		rep.Store.Puts, rep.Store.Gets, rep.Store.BytesWritten)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained and shut down cleanly")
}

// CG case study (paper §IV-D, Algorithm 2): analyze the NPB Conjugate
// Gradient port and show why x must be checkpointed (Write-After-Read:
// read by conj_grad through r = x, overwritten by x = z/||z||) while z, p,
// q, r and A need no checkpoint.
//
//	go run ./examples/cg_casestudy
package main

import (
	"fmt"
	"log"

	"autocheck"
	"autocheck/internal/progs"
)

func main() {
	bench := progs.Get("CG")
	src := bench.Source(0)
	spec, err := bench.Spec(0)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := autocheck.CompileProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	recs, _, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	opts := autocheck.DefaultOptions()
	opts.Module = mod
	res, err := autocheck.Analyze(recs, spec, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CG main loop: %s lines %d-%d, trace of %d records\n\n",
		spec.Function, spec.StartLine, spec.EndLine, len(recs))

	fmt.Println("conj_grad input variables (globals, initialized in main before the loop):")
	critical := map[string]autocheck.DependencyType{}
	for _, c := range res.Critical {
		critical[c.Name] = c.Type
	}
	for _, v := range res.MLI {
		if ty, ok := critical[v.Name]; ok {
			fmt.Printf("  %-8s -> CHECKPOINT (%s)\n", v.Name, ty)
		} else {
			fmt.Printf("  %-8s -> no dependency necessary for checkpointing\n", v.Name)
		}
	}
	fmt.Println()
	for _, c := range res.Critical {
		switch c.Type {
		case autocheck.WAR:
			fmt.Printf("%s: Write-After-Read — its value is consumed (r = x at the top of\n"+
				"conj_grad) before the loop overwrites it (x = z/||z||); a restart without\n"+
				"it would lose cross-iteration state.\n\n", c.Name)
		case autocheck.Index:
			fmt.Printf("%s: induction variable of the outermost main-computation loop —\n"+
				"checkpointed so the restart resumes at the failed iteration.\n", c.Name)
		}
	}
}

// Parallel trace analysis demo (paper §V-A): the trace file stream is
// partitioned at instruction-block boundaries and parsed by a pool of
// workers, the reproduction's analogue of the paper's 48-thread OpenMP
// optimization. The demo sweeps worker counts over the largest port's
// trace and reports the pre-processing speedup.
//
//	go run ./examples/parallel_trace
package main

import (
	"fmt"
	"log"
	"time"

	"autocheck"
	"autocheck/internal/progs"
)

func main() {
	bench := progs.Get("HACC")
	src := bench.Source(32) // a larger input for a meaningful sweep
	spec, err := bench.Spec(32)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := autocheck.CompileProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	recs, _, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	data := autocheck.EncodeTrace(recs)
	bin := autocheck.EncodeTraceBinary(recs)
	fmt.Printf("HACC trace: %d records, text %.2f MiB, binary %.2f MiB (%.0f%%)\n\n",
		len(recs), float64(len(data))/(1<<20), float64(len(bin))/(1<<20),
		100*float64(len(bin))/float64(len(data)))

	var serial time.Duration
	run := func(label string, input []byte, workers int, streaming bool) {
		opts := autocheck.DefaultOptions()
		opts.Module = mod
		opts.Workers = workers
		opts.Streaming = streaming
		t0 := time.Now()
		res, err := autocheck.AnalyzeBytes(input, spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		if serial == 0 {
			serial = elapsed
		}
		fmt.Printf("%-22s pre=%8.2fms  total=%8.2fms  speedup=%.2fx  critical=%v\n",
			label,
			float64(res.Timing.Pre.Microseconds())/1000,
			float64(elapsed.Microseconds())/1000,
			float64(serial)/float64(elapsed),
			res.CriticalNames())
	}
	for _, workers := range []int{1, 2, 4, 8, 16, 48} {
		run(fmt.Sprintf("text workers=%d", workers), data, workers, false)
	}
	run("binary", bin, 0, false)
	run("text streaming", data, 0, true)
	run("binary streaming", bin, 0, true)
}

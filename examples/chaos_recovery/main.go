// Chaos recovery walkthrough: what deterministic fault injection looks
// like at each altitude of the checkpoint stack.
//
// Part 1 arms failpoints directly on a file backend and shows the raw
// mechanics — an injected error aborting a commit, a torn write
// persisting a truncated object that the CRC framing rejects on read,
// and the same schedule replaying identically from its seed.
//
// Part 2 runs a slice of the real chaos validation sweep
// (harness.RunChaosValidation, the engine behind `autocheck chaos`):
// the IS port checkpointing through two store stacks while a schedule
// kills it mid-run, then restarting and verifying the recovered state
// byte-for-byte against the failure-free execution.
//
//	go run ./examples/chaos_recovery
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"autocheck/internal/faultinject"
	"autocheck/internal/harness"
	"autocheck/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "autocheck-chaos-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Part 1: failpoints on a bare backend ----
	fmt.Println("== failpoints on a file backend ==")
	reg := faultinject.NewRegistry(7)
	if err := reg.ArmSchedule("store.put=error@nth=2;store.put=torn@nth=3"); err != nil {
		log.Fatal(err)
	}
	b, err := store.NewFile(dir+"/part1", false)
	if err != nil {
		log.Fatal(err)
	}
	b.SetFaults(reg)
	sections := []store.Section{{Name: "x", Data: []byte("the critical variable")}}

	fmt.Printf("put #1: %v\n", b.Put("ckpt-000001", sections)) // clean
	err = b.Put("ckpt-000002", sections)                       // injected error: nothing committed
	fmt.Printf("put #2: %v (injected=%v)\n", err, errors.Is(err, faultinject.ErrInjected))
	if _, err := b.Get("ckpt-000002"); errors.Is(err, store.ErrNotFound) {
		fmt.Println("        -> aborted commit left no object behind")
	}
	err = b.Put("ckpt-000003", sections) // torn: a truncated object reaches the disk
	fmt.Printf("put #3: %v\n", err)
	if _, err := b.Get("ckpt-000003"); err != nil {
		fmt.Printf("        -> torn object rejected on read: %v\n", err)
	}
	if got, err := b.Get("ckpt-000001"); err == nil {
		fmt.Printf("        -> older checkpoint intact: %q\n", got[0].Data)
	}
	fmt.Printf("fired events: %v\n", reg.Events())

	// Determinism: the same seed + schedule replays the same firings.
	replay := faultinject.NewRegistry(7)
	replay.ArmSchedule("store.put=error@nth=2;store.put=torn@nth=3")
	b2, _ := store.NewFile(dir+"/replay", false)
	b2.SetFaults(replay)
	for i := 1; i <= 3; i++ {
		b2.Put(fmt.Sprintf("ckpt-%06d", i), sections)
	}
	fmt.Printf("replayed     : %v (identical from seed %d)\n\n", replay.Events(), replay.Seed())

	// ---- Part 2: a slice of the chaos validation sweep ----
	fmt.Println("== chaos validation: kill, restart, verify ==")
	rep, err := harness.RunChaosValidation(dir+"/sweep", harness.ChaosOptions{
		Seed:       1,
		Benchmarks: []string{"IS"},
		Stacks:     []string{"file+async+incr", "remote+cached"},
		Schedules:  []string{"torn-write", "crash-committed", "shed-storm"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(harness.FormatChaos(rep))
	if rep.Failures == 0 {
		fmt.Println("\nevery injected failure either recovered to a byte-identical state")
		fmt.Println("or was refused with a typed error — nothing silently corrupted.")
	}
}

// Analysis-as-a-service demo: the networked twin of
// examples/online_analysis. Instead of running the identification engine
// in-process, a traced application streams its trace to the ingest
// service and gets back the critical-variable set — the full AutoCheck
// loop as a service, with sessions durable enough to survive the service
// dying mid-stream.
//
// The demo starts an ingest-enabled checkpoint service over a
// file-backed store, analyzes the IS port three ways — locally, one-shot
// over the wire, and as a chunked session — then kills the service
// halfway through a fourth stream, starts a replacement on a new port
// over the same store directory, and resumes the same session to the
// same byte-identical answer.
//
//	go run ./examples/analysis_service
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"autocheck"
	"autocheck/internal/analysis"
	"autocheck/internal/progs"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

func startService(dir string) (*server.Server, string) {
	svc, err := server.New(server.Config{
		Store:  store.Config{Kind: store.KindFile, Dir: dir},
		Ingest: &analysis.Config{},
	})
	if err != nil {
		log.Fatal(err)
	}
	ready := make(chan string, 1)
	go func() {
		if err := svc.ListenAndServe("127.0.0.1:0", ready); err != nil {
			log.Fatal(err)
		}
	}()
	return svc, <-ready
}

func main() {
	root, err := os.MkdirTemp("", "autocheck-analysis-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// 1. Trace IS locally — the part that stays with the application —
	// and analyze in-process for the reference answer.
	bench := progs.Get("IS")
	spec, err := bench.Spec(0)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := autocheck.CompileProgram(bench.Source(0))
	if err != nil {
		log.Fatal(err)
	}
	recs, _, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	trace := autocheck.EncodeTraceBinary(recs)
	local, err := autocheck.AnalyzeBytes(trace, spec, autocheck.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IS trace: %d records, %d bytes binary; local critical=%v\n\n",
		local.Stats.Records, len(trace), local.CriticalNames())

	// 2. The service, and a retrying client pointed at it.
	svc, addr := startService(root)
	fmt.Printf("ingest service on %s, sessions stored under %s\n", addr, root)
	cli, err := analysis.NewClient(addr)
	if err != nil {
		log.Fatal(err)
	}

	// 3. One-shot: the whole trace in one request.
	t0 := time.Now()
	res, err := cli.Analyze(trace, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot:        %6.2fms  critical=%v\n",
		float64(time.Since(t0).Microseconds())/1000, res.CriticalNames())

	// 4. Chunked session: the trace as a stream of 4 KiB chunks, the
	// shape a live tracer would use.
	t0 = time.Now()
	res, err = cli.AnalyzeChunked(trace, spec, 4<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunked session: %6.2fms  critical=%v\n\n",
		float64(time.Since(t0).Microseconds())/1000, res.CriticalNames())

	// 5. Kill mid-stream. Send half the chunks, shut the service down,
	// bring up a replacement over the same store directory, and resume
	// the same session id: every acknowledged chunk was persisted before
	// its ack, so the replacement replays the prefix into a fresh engine
	// and the stream continues where it left off.
	sess, err := cli.NewSession(spec)
	if err != nil {
		log.Fatal(err)
	}
	const chunkBytes = 4 << 10
	total := (len(trace) + chunkBytes - 1) / chunkBytes
	half := total / 2
	for seq := 0; seq < half; seq++ {
		lo := seq * chunkBytes
		hi := min(lo+chunkBytes, len(trace))
		if err := sess.SendChunk(seq, trace[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed %d/%d chunks of session %s — killing the service\n", half, total, sess.ID)
	if err := svc.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}

	svc2, addr2 := startService(root)
	defer svc2.Shutdown(context.Background())
	fmt.Printf("replacement service on %s (same store)\n", addr2)
	if err := cli.SetAddr(addr2); err != nil {
		log.Fatal(err)
	}
	st, err := sess.Status() // triggers recovery; reports the resume point
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session recovered: state=%s next_seq=%d (%d bytes acknowledged)\n",
		st.State, st.NextSeq, st.Bytes)
	for seq := st.NextSeq; seq < total; seq++ {
		lo := seq * chunkBytes
		hi := min(lo+chunkBytes, len(trace))
		if err := sess.SendChunk(seq, trace[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	resumed, err := sess.Finish()
	if err != nil {
		log.Fatal(err)
	}
	match := reflect.DeepEqual(resumed.CriticalNames(), local.CriticalNames()) &&
		resumed.Stats == local.Stats
	fmt.Printf("resumed result:  critical=%v, identical to local analysis: %v\n\n",
		resumed.CriticalNames(), match)
	if !match {
		log.Fatal("resumed result diverged from local analysis")
	}

	// 6. The service's own accounting.
	snap := svc2.Obs().Snapshot()
	fmt.Printf("replacement service counters: resumes=%d finished=%d chunks=%d\n",
		snap.Counters["analysis.resumes"],
		snap.Counters["analysis.sessions_finished"],
		snap.Histograms["analysis.chunk.ns"].Count)
}

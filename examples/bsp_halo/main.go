// BSP multi-rank demo (paper §VII "MPI programs"): an SPMD diffusion
// kernel runs on 4 simulated ranks with halo exchanges at global barriers.
// AutoCheck analyzes each rank locally — no inter-process analysis — and
// the per-rank variable sets are checkpointed synchronously at a barrier.
// A node loss mid-run is recovered by a global restart whose outputs match
// the failure-free execution.
//
//	go run ./examples/bsp_halo
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"autocheck"
	"autocheck/internal/bsp"
	"autocheck/internal/checkpoint"
	"autocheck/internal/core"
	"autocheck/internal/interp"
)

const src = `
float u[10];
float tmp[10];
int main() {
  int rank = myrank();
  for (int i = 0; i < 10; i++) {
    u[i] = rank * 10 + i;
    tmp[i] = 0.0;
  }
  for (int step = 0; step < 6; step++) {
    for (int i = 1; i < 9; i++) {
      tmp[i] = (u[i - 1] + u[i + 1]) * 0.5;
    }
    for (int i = 1; i < 9; i++) {
      u[i] = u[i] * 0.5 + tmp[i] * 0.5;
    }
  }
  print(rank, u[2], u[7]);
  return 0;
}`

const ranks = 4

func main() {
	spec := core.LoopSpec{Function: "main", StartLine: 10, EndLine: 17}
	mod, err := autocheck.CompileProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	// Ring halo exchange: each rank's right interior cell feeds the right
	// neighbor's left ghost, and vice versa.
	var exchanges []bsp.Exchange
	for r := 0; r < ranks-1; r++ {
		exchanges = append(exchanges,
			bsp.Exchange{SrcRank: r, SrcVar: "u", SrcOff: 8, DstRank: r + 1, DstVar: "u", DstOff: 0, Cells: 1},
			bsp.Exchange{SrcRank: r + 1, SrcVar: "u", SrcOff: 1, DstRank: r, DstVar: "u", DstOff: 9, Cells: 1},
		)
	}

	fmt.Println("per-rank AutoCheck analysis (local work, §VII):")
	results, err := bsp.ParallelAnalyzeRanks(mod, ranks, spec, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for r, res := range results {
		fmt.Printf("  rank %d: %v\n", r, res.CriticalNames())
	}

	world := func() *bsp.World {
		w, err := bsp.NewWorld(mod, ranks, spec, exchanges)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}

	refOuts, err := world().Run(nil)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "bsp-halo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctxs := make([]*checkpoint.Context, ranks)
	for r := range ctxs {
		ctx, err := checkpoint.NewContext(fmt.Sprintf("%s/rank%d", dir, r), checkpoint.L1)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range results[r].Critical {
			ctx.Protect(c.Name, c.Base, c.SizeBytes)
		}
		ctxs[r] = ctx
	}

	fmt.Println("\nrunning with synchronous checkpoints; injecting node loss at barrier 4...")
	_, err = world().Run(func(w *bsp.World, entry int64) error {
		if entry >= 2 {
			for r, m := range w.Ranks {
				if err := ctxs[r].Checkpoint(m, entry-1); err != nil {
					return err
				}
			}
		}
		if entry == 4 {
			return interp.ErrFailStop
		}
		return nil
	})
	if !errors.Is(err, interp.ErrFailStop) {
		log.Fatalf("expected fail-stop, got %v", err)
	}

	fmt.Println("global restart from the latest synchronized checkpoints...")
	outs, err := world().Run(func(w *bsp.World, entry int64) error {
		if entry == 1 {
			for r, m := range w.Ranks {
				if _, err := ctxs[r].Restart(m, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	match := true
	for r := range outs {
		if outs[r] != refOuts[r] {
			match = false
		}
		fmt.Printf("  rank %d output: %s", r, outs[r])
	}
	fmt.Printf("\nrestarted world matches failure-free run: %v\n", match)
}

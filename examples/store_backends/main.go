// Checkpoint storage engine demo: analyze the IS port (whose key_array
// changes only two elements per iteration), then checkpoint its critical
// variables at every main-loop boundary through each backend and
// write-path decorator of internal/store, comparing bytes persisted,
// wall-clock cost, and restart correctness. The full-snapshot column is
// the BLCR-like baseline of Table IV; the incremental rows show the
// delta/keyframe write path persisting less than full critical-set
// images.
//
//	go run ./examples/store_backends
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"autocheck/internal/checkpoint"
	"autocheck/internal/harness"
	"autocheck/internal/progs"
	"autocheck/internal/store"
)

func main() {
	bench := progs.Get("IS")
	p, err := harness.Prepare(bench, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Analyze(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AutoCheck-detected variables for IS:")
	for _, c := range res.Critical {
		fmt.Printf("  %-22s %-7s %6d bytes\n", c.Name, c.Type, c.SizeBytes)
	}

	dir, err := os.MkdirTemp("", "autocheck-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	type row struct {
		name  string
		cfg   store.Config
		level checkpoint.Level
	}
	rows := []row{
		{"memory", store.Config{Kind: store.KindMemory}, checkpoint.L1},
		{"file", store.Config{Kind: store.KindFile}, checkpoint.L1},
		{"file L2 (partner copy)", store.Config{Kind: store.KindFile}, checkpoint.L2},
		{"sharded (4 workers)", store.Config{Kind: store.KindSharded, Workers: 4}, checkpoint.L1},
		{"file + async", store.Config{Kind: store.KindFile, Async: true}, checkpoint.L1},
		{"file + incremental", store.Config{Kind: store.KindFile, Incremental: true, Keyframe: 8}, checkpoint.L1},
		{"sharded + async + incr", store.Config{Kind: store.KindSharded, Workers: 4, Async: true, Incremental: true, Keyframe: 8}, checkpoint.L1},
	}

	fmt.Println("\ncheckpointing every main-loop iteration through each backend:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Backend\tCkpts\tImage bytes\tPersisted\tSkipped vars\tTime\tRestart iter")
	var snapshotBytes int64
	for i, r := range rows {
		cfg := r.cfg
		if cfg.Kind != store.KindMemory {
			cfg.Dir = filepath.Join(dir, fmt.Sprintf("b%d", i))
		}
		t0 := time.Now()
		run, err := harness.MeasureStorageRun(p.Mod, res, cfg, r.level, i == 0)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		if i == 0 {
			snapshotBytes = run.SnapshotBytes
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%s\t%d\n",
			r.name, run.Checkpoints, run.LogicalBytes, run.PersistedBytes,
			run.SectionsSkipped, time.Since(t0).Round(10*time.Microsecond), run.RestartIter)
	}
	w.Flush()
	fmt.Printf("\nBLCR-like full snapshots at the same boundaries: %d bytes\n", snapshotBytes)
	fmt.Println("(every backend restores the same final iteration; the incremental")
	fmt.Println("rows persist fewer bytes than full critical-set images, and both")
	fmt.Println("stay far below the full-snapshot baseline)")
	fmt.Println("\nsame selection, end to end: autocheck validate -store sharded -level L2 -async -incremental")
}

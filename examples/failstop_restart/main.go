// Fail-stop checkpoint/restart demo (paper §VI-B): analyze the HACC port,
// checkpoint the detected variables with the FTI-like library, inject a
// fail-stop failure mid-loop, restart from the latest checkpoint, and
// verify the restarted execution matches a failure-free run. Also compares
// the checkpoint size against a BLCR-like full-process snapshot
// (Table IV's storage argument).
//
//	go run ./examples/failstop_restart
package main

import (
	"fmt"
	"log"
	"os"

	"autocheck"
	"autocheck/internal/progs"
	"autocheck/internal/validate"
)

func main() {
	bench := progs.Get("HACC")
	src := bench.Source(0)
	spec, err := bench.Spec(0)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := autocheck.CompileProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	recs, _, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	opts := autocheck.DefaultOptions()
	opts.Module = mod
	res, err := autocheck.Analyze(recs, spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AutoCheck-detected variables for HACC:")
	for _, c := range res.Critical {
		fmt.Printf("  %-10s %-7s %6d bytes\n", c.Name, c.Type, c.SizeBytes)
	}

	dir, err := os.MkdirTemp("", "autocheck-failstop-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	v, err := validate.New(mod, res, dir)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmain loop iterations:        %d\n", rep.Iterations)
	fmt.Printf("fail-stop injected after:    iterations %v\n", rep.FailPoints)
	fmt.Printf("restart matches reference:   %v\n", rep.Sufficient)
	fmt.Printf("checkpoints written:         %d\n", rep.Checkpoints)
	fmt.Printf("AutoCheck checkpoint size:   %d bytes\n", rep.CheckpointBytes)
	fmt.Printf("BLCR-like full snapshot:     %d bytes (%.1fx larger)\n",
		rep.FullSnapshotBytes, float64(rep.FullSnapshotBytes)/float64(rep.CheckpointBytes))

	fmt.Println("\nfalse-positive check (drop one variable at a time):")
	for _, c := range res.Critical {
		status := "NECESSARY (restart broke without it)"
		if !rep.Necessary[c.Name] {
			status = "unnecessary?!"
		}
		fmt.Printf("  without %-10s -> %s\n", c.Name, status)
	}
}

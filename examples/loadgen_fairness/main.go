// Noisy-neighbor fairness demo for the unified admission layer: the
// same two-tenant load — one tenant flooding the checkpoint service
// from many connections, one polite tenant checkpointing at a trickle —
// runs twice. First against the classic global in-flight semaphore,
// where the flood occupies every slot and the polite tenant eats 503s
// and retry backoff; then with per-tenant slots and a bounded priority
// queue, where the controller caps how much of the service one tenant
// can hold and the victim's tail collapses. The per-reason and
// per-tenant shed counters show who was turned away, and why.
//
// The backend models a fixed per-write disk cost so slots are actually
// held long enough to contend — the same effect `-store file -sync`
// has on real hardware, made deterministic for a demo.
//
//	go run ./examples/loadgen_fairness
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"autocheck/internal/admission"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

const (
	noisyClients = 24
	noisyOps     = 20
	politeOps    = 40
	payloadBytes = 4 << 10
	writeCost    = 3 * time.Millisecond
)

// slowBackend charges a fixed latency per write, standing in for a
// synced file store.
type slowBackend struct{ store.Backend }

func (s slowBackend) Put(key string, sections []store.Section) error {
	time.Sleep(writeCost)
	return s.Backend.Put(key, sections)
}

func main() {
	fmt.Printf("two tenants, one service: %d flooding clients vs 1 polite client\n\n", noisyClients)

	base := runScenario("global semaphore only", admission.Config{})
	fair := runScenario("per-tenant slots + priority queue", admission.Config{
		TenantSlots: 2,
		QueueDepth:  16,
	})
	fmt.Printf("polite tenant p99: %v unprotected vs %v with per-tenant admission\n",
		base.Round(time.Millisecond), fair.Round(time.Millisecond))
}

// runScenario starts a fresh in-process service with the given
// admission knobs, runs the flood and the polite client against it, and
// returns the polite tenant's p99.
func runScenario(name string, adm admission.Config) time.Duration {
	svc := server.NewWithFactory(server.Config{
		MaxInFlight: 4,
		Admission:   adm,
	}, func(ns string) (store.Backend, error) {
		return slowBackend{store.NewMemory()}, nil
	})
	ready := make(chan string, 1)
	go svc.ListenAndServe("127.0.0.1:0", ready)
	addr := <-ready
	defer svc.Shutdown(context.Background())

	payload := make([]byte, payloadBytes)
	secs := []store.Section{{Name: "data", Data: payload}}

	// The flood: many connections, one tenant, Puts as fast as the
	// service lets them through. Failures are expected — being shed is
	// the mechanism under demonstration.
	var wg sync.WaitGroup
	for c := 0; c < noisyClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := store.NewRemote(addr, "noisy")
			if err != nil {
				return
			}
			defer r.Close()
			r.MaxAttempts = 2
			r.Backoff = 5 * time.Millisecond
			r.MaxElapsed = 100 * time.Millisecond
			for op := 0; op < noisyOps; op++ {
				r.Put(fmt.Sprintf("flood-%02d-%04d", c, op), secs)
			}
		}()
	}

	// The victim: one client, its own tenant, measured end to end with
	// the retries and Retry-After waits its checkpoints really cost.
	polite, err := store.NewRemote(addr, "polite")
	if err != nil {
		log.Fatal(err)
	}
	defer polite.Close()
	lats := make([]time.Duration, 0, politeOps)
	failures := 0
	for op := 0; op < politeOps; op++ {
		t0 := time.Now()
		if err := polite.Put(fmt.Sprintf("ckpt-%06d", op), secs); err != nil {
			failures++
		}
		lats = append(lats, time.Since(t0))
	}
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99 := lats[len(lats)/2], lats[len(lats)*99/100]
	fmt.Printf("%s:\n", name)
	fmt.Printf("  polite tenant: p50=%v p99=%v failures=%d/%d\n",
		p50.Round(time.Millisecond), p99.Round(time.Millisecond), failures, politeOps)

	counters := svc.Obs().Snapshot().Counters
	fmt.Printf("  sheds: total=%d inflight=%d tenant_quota=%d (noisy=%d polite=%d)\n\n",
		counters["server.shed"],
		counters["server.shed.inflight"],
		counters["server.shed.tenant_quota"],
		counters["server.shed.ns.noisy"],
		counters["server.shed.ns.polite"])
	return p99
}

// Replicated checkpoint tier demo: three checkpoint services form a
// cluster, and store.Replicated writes every checkpoint to all of them,
// acking once a write quorum of 2 holds the bytes. The demo kills a
// node mid-run (the quorum absorbs it without the writer noticing),
// brings it back empty-handed, lets one scrub pass re-replicate what it
// missed, and finishes with hedged reads bounding the read tail of a
// deliberately slow replica.
//
//	go run ./examples/replicated_cluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"autocheck/internal/faultinject"
	"autocheck/internal/server"
	"autocheck/internal/store"
)

func startNode(dir string) (*server.Server, string) {
	srv, err := server.New(server.Config{
		Store: store.Config{Kind: store.KindFile, Dir: dir},
	})
	if err != nil {
		log.Fatal(err)
	}
	ready := make(chan string, 1)
	go srv.ListenAndServe("127.0.0.1:0", ready)
	return srv, <-ready
}

func payload(i int) []store.Section {
	return []store.Section{
		{Name: "u", Data: bytes.Repeat([]byte{byte(i)}, 4096)},
		{Name: "iter", Data: []byte(fmt.Sprintf("%06d", i))},
	}
}

func main() {
	root, err := os.MkdirTemp("", "autocheck-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// 1. Three nodes, each its own file-backed service.
	var (
		srvs  [3]*server.Server
		addrs = make([]string, 3)
		dirs  [3]string
	)
	for i := range srvs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("node%d", i))
		srvs[i], addrs[i] = startNode(dirs[i])
		fmt.Printf("node %d on %s\n", i, addrs[i])
	}

	// 2. The quorum tier: N=3, W=2, R=2. Every Put fans out to all three
	// replicas through per-replica write queues and returns once two ack.
	rep, err := store.Open(store.Config{
		Kind: store.KindReplicated, Addrs: addrs, Namespace: "demo",
		WriteQuorum: 2, ReadQuorum: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := rep.Put(fmt.Sprintf("ckpt-%06d", i), payload(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 checkpoints written at W=2; all three nodes hold them")

	// 3. Node death mid-run: the write quorum still holds on the two
	// survivors, so the workload keeps checkpointing undisturbed.
	srvs[2].Shutdown(context.Background())
	fmt.Println("node 2 killed")
	for i := 6; i <= 10; i++ {
		if err := rep.Put(fmt.Sprintf("ckpt-%06d", i), payload(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		log.Fatal(err)
	}
	got, err := rep.Get("ckpt-000010")
	if err != nil || !bytes.Equal(got[0].Data, payload(10)[0].Data) {
		log.Fatalf("read after node death: %v", err)
	}
	fmt.Println("5 more checkpoints written and read back with one node dead")
	rep.Close()

	// 4. The node returns (fresh port, same disk) having missed 5 writes;
	// one scrub sweep cross-checks every key against the others and
	// re-replicates what it missed.
	srvs[2], addrs[2] = startNode(dirs[2])
	fmt.Printf("node 2 back on %s\n", addrs[2])
	rep2, err := store.Open(store.Config{
		Kind: store.KindReplicated, Addrs: addrs, Namespace: "demo",
		WriteQuorum: 2, ReadQuorum: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	scanned, repaired, err := rep2.(*store.Replicated).ScrubOnce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub: %d keys scanned, %d repaired onto the returned node\n", scanned, repaired)
	rep2.Close()

	// 5. Hedged reads: replica 0 is made slow (an injected 2ms delay on
	// its read site). With R=1 every read starts on the slow node; the
	// hedged tier races a second replica after its adaptive delay.
	slow := faultinject.NewRegistry(1)
	if err := slow.ArmSchedule(store.SiteReplicaGet(0) + "=delay@every=1@delay=2ms"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nread tail with replica 0 slowed by 2ms, 100 reads each:")
	for _, tc := range []struct {
		name  string
		hedge time.Duration
	}{
		{"unhedged", -1},
		{"hedged  ", 300 * time.Microsecond},
	} {
		b, err := store.Open(store.Config{
			Kind: store.KindReplicated, Addrs: addrs, Namespace: "demo",
			ReadQuorum: 1, HedgeAfter: tc.hedge, Faults: slow,
		})
		if err != nil {
			log.Fatal(err)
		}
		durs := make([]time.Duration, 100)
		for i := range durs {
			start := time.Now()
			if _, err := b.Get("ckpt-000010"); err != nil {
				log.Fatal(err)
			}
			durs[i] = time.Since(start)
		}
		st := b.Stats()
		b.Close()
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total time.Duration
		for _, d := range durs {
			total += d
		}
		fmt.Printf("  %s  mean=%7s  p99=%7s  hedges fired=%d won=%d\n",
			tc.name, (total / 100).Round(10*time.Microsecond),
			durs[98].Round(10*time.Microsecond), st.HedgesFired, st.HedgesWon)
	}

	for _, s := range srvs {
		s.Shutdown(context.Background())
	}
}

// Quickstart: run AutoCheck end-to-end on the paper's Fig. 4 example code.
//
// The program compiles the example, executes it under the tracing
// interpreter (the LLVM-Tracer role), analyzes the dynamic trace, and
// prints every artifact of the paper's Figs. 4-5: the MLI variables, the
// contracted data dependency graph, the execution-time-ordered R/W
// sequence, and the final critical-variable report (r, a, sum, it).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"autocheck"
)

// The example code of the paper's Fig. 4; the main computation loop spans
// lines 17-25.
const source = `
void foo(int *p, int *q) {
  for (int i = 0; i < 10; ++i) {
    q[i] = p[i] * 2;
  }
}
int main() {
  int a[10];
  int b[10];
  int sum = 0;
  int s = 0;
  int r = 1;
  for (int i = 0; i < 10; ++i) {
    a[i] = 0;
    b[i] = 0;
  }
  for (int it = 0; it < 10; ++it) {
    int m;
    s = it + 1;
    a[it] = s * r;
    foo(a, b);
    r++;
    m = a[it] + b[it];
    sum = m;
  }
  print(sum);
  return 0;
}`

func main() {
	mod, err := autocheck.CompileProgram(source)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	recs, out, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	fmt.Printf("program output: %s", out)
	fmt.Printf("dynamic trace: %d instruction records\n\n", len(recs))

	opts := autocheck.DefaultOptions()
	opts.Module = mod
	opts.BuildDDG = true
	res, err := autocheck.Analyze(recs, autocheck.LoopSpec{
		Function: "main", StartLine: 17, EndLine: 25,
	}, opts)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Println("main-loop-input (MLI) variables (paper §IV-A):")
	for _, v := range res.MLI {
		fmt.Printf("  %-4s base=%#x size=%dB\n", v.Name, v.Base, v.SizeBytes)
	}

	fmt.Println("\ncontracted DDG (paper Fig. 5(d)):")
	var lines []string
	for _, n := range res.Contracted.Nodes() {
		for _, c := range res.Contracted.Children(n) {
			lines = append(lines, fmt.Sprintf("  %s -> %s", n.Name, c.Name))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}

	fmt.Println("\nfirst R/W dependencies in execution order (paper Fig. 5(e)):")
	evs := res.Contracted.Events()
	seen := map[string]bool{}
	n := 0
	for _, e := range evs {
		key := fmt.Sprintf("%s-%s", e.Node.Name, e.Kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		n++
		fmt.Printf("  %d: %s\n", n, key)
	}

	fmt.Println("\ncritical variables to checkpoint (paper §IV-C):")
	for _, c := range res.Critical {
		fmt.Printf("  %-4s %-8s %4d bytes  (declared in %s)\n", c.Name, c.Type, c.SizeBytes, c.Fn)
	}
	fmt.Printf("\nanalysis time: pre=%v dep=%v identify=%v total=%v\n",
		res.Timing.Pre, res.Timing.Dep, res.Timing.Identify, res.Timing.Total)
}

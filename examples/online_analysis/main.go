// Online (instrumentation-time) analysis demo — the paper's §IX future
// work: "incorporate AutoCheck into LLVM to be an independent LLVM
// instrumentation tool to eliminate the performance bottleneck because of
// trace file processing."
//
// The collector consumes dynamic records directly from the tracer callback
// while the program runs: no trace file is written, parsed, or kept in
// memory. The demo runs both pipelines on the AMG port (the most expensive
// analysis row of Table III) and compares cost and results.
//
//	go run ./examples/online_analysis
package main

import (
	"fmt"
	"log"
	"time"

	"autocheck"
	"autocheck/internal/progs"
)

func main() {
	bench := progs.Get("AMG")
	src := bench.Source(16)
	spec, err := bench.Spec(16)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := autocheck.CompileProgram(src)
	if err != nil {
		log.Fatal(err)
	}

	// Offline: trace to a (in-memory) file, parse it back, analyze.
	t0 := time.Now()
	recs, _, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	data := autocheck.EncodeTrace(recs)
	offRes, err := autocheck.AnalyzeBytes(data, spec, autocheck.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	offline := time.Since(t0)

	// Online: analysis runs inside the instrumentation callback.
	t0 = time.Now()
	onRes, _, err := autocheck.AnalyzeProgramOnline(mod, spec, autocheck.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	online := time.Since(t0)

	fmt.Printf("AMG trace: %d records (%.2f MiB as a trace file)\n\n",
		offRes.Stats.Records, float64(len(data))/(1<<20))
	fmt.Printf("offline (trace file -> parse -> analyze): %8.2fms, critical=%v\n",
		float64(offline.Microseconds())/1000, offRes.CriticalNames())
	fmt.Printf("online  (analysis inside instrumentation): %8.2fms, critical=%v\n",
		float64(online.Microseconds())/1000, onRes.CriticalNames())
	fmt.Printf("\nspeedup from eliminating trace-file processing: %.2fx\n",
		float64(offline)/float64(online))
}

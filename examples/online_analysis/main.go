// Online (instrumentation-time) analysis demo — the paper's §IX future
// work: "incorporate AutoCheck into LLVM to be an independent LLVM
// instrumentation tool to eliminate the performance bottleneck because of
// trace file processing."
//
// Every mode here is the same incremental engine behind a different
// adapter. Offline materializes a trace, encodes it, parses it back, and
// runs the engine's three-sweep schedule; online wires the engine's
// Observe straight into the tracer, so no trace bytes ever exist. The
// demo runs both on the AMG port (the most expensive analysis row of
// Table III), then fans the engine out across every benchmark port with
// AnalyzeMany to show the cross-trace dimension of §V-A parallelism.
//
//	go run ./examples/online_analysis
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"autocheck"
	"autocheck/internal/progs"
)

func main() {
	bench := progs.Get("AMG")
	src := bench.Source(16)
	spec, err := bench.Spec(16)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := autocheck.CompileProgram(src)
	if err != nil {
		log.Fatal(err)
	}

	// Offline: trace to a (in-memory) file, parse it back, analyze.
	t0 := time.Now()
	recs, _, err := autocheck.TraceProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	data := autocheck.EncodeTrace(recs)
	offRes, err := autocheck.AnalyzeBytes(data, spec, autocheck.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	offline := time.Since(t0)

	// Online: the engine observes records inside the instrumentation
	// callback; no trace is encoded, written, or parsed.
	t0 = time.Now()
	onRes, _, err := autocheck.AnalyzeProgramOnline(mod, spec, autocheck.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	online := time.Since(t0)

	fmt.Printf("AMG trace: %d records (%.2f MiB as a trace file)\n\n",
		offRes.Stats.Records, float64(len(data))/(1<<20))
	fmt.Printf("offline (trace file -> parse -> engine schedule): %8.2fms, critical=%v\n",
		float64(offline.Microseconds())/1000, offRes.CriticalNames())
	fmt.Printf("online  (engine inside the instrumentation):      %8.2fms, critical=%v\n",
		float64(online.Microseconds())/1000, onRes.CriticalNames())
	fmt.Printf("\nspeedup from eliminating trace-file processing: %.2fx\n",
		float64(offline)/float64(online))

	// Cross-trace parallelism: one engine per port, a bounded pool of
	// workers. Each input is independent, so the pool scales with cores.
	fmt.Printf("\n-- AnalyzeMany: all %d ports, one engine each --\n", len(progs.All()))
	var inputs []autocheck.AnalysisInput
	for _, b := range progs.All() {
		bspec, err := b.Spec(0)
		if err != nil {
			log.Fatal(err)
		}
		bmod, err := autocheck.CompileProgram(b.Source(0))
		if err != nil {
			log.Fatal(err)
		}
		brecs, _, err := autocheck.TraceProgram(bmod)
		if err != nil {
			log.Fatal(err)
		}
		opts := autocheck.DefaultOptions()
		opts.Module = bmod
		inputs = append(inputs, autocheck.AnalysisInput{
			Name: b.Name, Spec: bspec, Opts: opts, Records: brecs,
		})
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		t0 = time.Now()
		results, err := autocheck.AnalyzeMany(inputs, workers)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, r := range results {
			total += len(r.Critical)
		}
		fmt.Printf("workers=%-2d %8.2fms  (%d critical variables across %d ports)\n",
			workers, float64(time.Since(t0).Microseconds())/1000, total, len(results))
	}
}
